// Tracer tests: event streams, histograms, ring-buffer bounds.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"

namespace cgra::fabric {
namespace {

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

TEST(Trace, RecordsRetirementsInOrder) {
  Fabric f(1, 1);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog("  movi 0, #1\n  add 0, 0, #1\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].opcode, isa::Opcode::kMovi);
  EXPECT_EQ(tracer.events()[1].opcode, isa::Opcode::kAdd);
  EXPECT_EQ(tracer.events()[2].kind, TraceEventKind::kHalt);
  EXPECT_LT(tracer.events()[0].cycle, tracer.events()[2].cycle);
  EXPECT_EQ(tracer.events()[1].pc, 1);
}

TEST(Trace, HistogramMatchesTileStats) {
  Fabric f(1, 1);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog(
      "  movi 0, #5\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
  f.tile(0).restart();
  f.run(1000);
  EXPECT_EQ(tracer.tile_retirements(0), f.tile(0).stats().instructions);
  EXPECT_EQ(tracer.opcode_count(0, isa::Opcode::kSub), 5);
  EXPECT_EQ(tracer.opcode_count(0, isa::Opcode::kBnez), 5);
  EXPECT_EQ(tracer.opcode_count(0, isa::Opcode::kHalt), 1);
}

TEST(Trace, RemoteWritesCarryDestination) {
  Fabric f(1, 2);
  f.links().set_output(0, interconnect::Direction::kEast);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog("  movi 0, #9\n  mov !3, 0\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  bool saw_remote = false;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == TraceEventKind::kRemoteWrite) {
      saw_remote = true;
      EXPECT_EQ(ev.tile, 0);
      EXPECT_EQ(ev.dst_tile, 1);
      EXPECT_EQ(ev.addr, 3);
      EXPECT_EQ(to_signed(ev.value), 9);
    }
  }
  EXPECT_TRUE(saw_remote);
}

TEST(Trace, FaultEventsRecorded) {
  Fabric f(1, 1);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog("  mov !0, 0\n  halt\n"));  // no link
  f.tile(0).restart();
  f.run(100);
  ASSERT_FALSE(tracer.events().empty());
  EXPECT_EQ(tracer.events().back().kind, TraceEventKind::kFault);
}

TEST(Trace, RingBufferBoundsAndCounters) {
  Fabric f(1, 1);
  Tracer tracer(8);  // tiny capacity
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog(
      "  movi 0, #50\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
  f.tile(0).restart();
  f.run(1000);
  EXPECT_LE(tracer.events().size(), 8u);
  EXPECT_GT(tracer.dropped(), 0);
  // Histograms never drop.
  EXPECT_EQ(tracer.tile_retirements(0), f.tile(0).stats().instructions);
}

TEST(Trace, RingBufferWraparoundKeepsNewestInOrder) {
  Fabric f(1, 1);
  Tracer tracer(8);
  f.attach_tracer(&tracer);
  // movi + 50x(sub, bnez) + halt = 102 events; only the last 8 survive.
  f.tile(0).load_program(prog(
      "  movi 0, #50\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
  f.tile(0).restart();
  f.run(1000);
  ASSERT_EQ(tracer.events().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 94);
  // The retained window is the tail of the stream, still in issue order:
  // bnez, sub, bnez, sub, bnez, sub, bnez, halt.
  const auto& evs = tracer.events();
  for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
    EXPECT_LE(evs[i].cycle, evs[i + 1].cycle);
  }
  EXPECT_EQ(evs.back().kind, TraceEventKind::kHalt);
  for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
    EXPECT_EQ(evs[i].opcode,
              i % 2 == 0 ? isa::Opcode::kBnez : isa::Opcode::kSub);
  }
}

TEST(Trace, DumpTruncationNoteAgreesWithDropped) {
  Tracer tracer(8);
  TraceEvent ev;
  ev.tile = 0;
  ev.kind = TraceEventKind::kRetire;
  for (int i = 0; i < 30; ++i) {
    ev.cycle = i;
    tracer.record(ev);
  }
  EXPECT_EQ(tracer.dropped(), 22);
  const std::string text = tracer.dump();
  // The dump's truncation note must quote exactly the dropped() count.
  EXPECT_NE(text.find("(22 earlier events dropped)"), std::string::npos);
}

TEST(Trace, DumpTruncationSurvivesWraparound) {
  Fabric f(1, 1);
  Tracer tracer(8);
  f.attach_tracer(&tracer);
  // 102 events through a capacity-8 ring: 94 dropped (see the wraparound
  // test above); the note and the counter must agree after the wrap.
  f.tile(0).load_program(prog(
      "  movi 0, #50\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
  f.tile(0).restart();
  f.run(1000);
  const std::string text = tracer.dump();
  const std::string note =
      "(" + std::to_string(tracer.dropped()) + " earlier events dropped)";
  EXPECT_NE(text.find(note), std::string::npos);
  // max_lines below capacity narrows the window but never changes the
  // ring-drop accounting in the note.
  const std::string narrow = tracer.dump(2);
  EXPECT_NE(narrow.find(note), std::string::npos);
  EXPECT_LT(narrow.size(), text.size());
}

TEST(Trace, NoTruncationNoteBeforeCapacity) {
  Tracer tracer(8);
  TraceEvent ev;
  ev.kind = TraceEventKind::kRetire;
  for (int i = 0; i < 5; ++i) tracer.record(ev);
  EXPECT_EQ(tracer.dropped(), 0);
  EXPECT_EQ(tracer.dump().find("dropped"), std::string::npos);
}

TEST(Trace, FaultsInterleaveWithRemoteWrites) {
  Fabric f(1, 2);
  f.links().set_output(0, interconnect::Direction::kEast);
  Tracer tracer;
  f.attach_tracer(&tracer);
  // Tile 0 streams remote writes for 12 cycles; tile 1 spins for ~7
  // cycles and then faults (no active output link), so the fault lands
  // in the middle of tile 0's write stream.
  std::string writer = "  movi 0, #7\n";
  for (int i = 1; i <= 12; ++i) {
    writer += "  mov !" + std::to_string(i) + ", 0\n";
  }
  writer += "  halt\n";
  f.tile(0).load_program(prog(writer));
  f.tile(1).load_program(prog(
      "  movi 0, #3\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  mov !0, 0\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  f.run(100);

  std::int64_t fault_cycle = -1;
  int remote_before = 0;
  int remote_after = 0;
  std::int64_t last_cycle = -1;
  for (const auto& ev : tracer.events()) {
    EXPECT_GE(ev.cycle, last_cycle);  // recorded in simulation order
    last_cycle = ev.cycle;
    if (ev.kind == TraceEventKind::kFault) {
      fault_cycle = ev.cycle;
      EXPECT_EQ(ev.tile, 1);
    }
  }
  ASSERT_GE(fault_cycle, 0);
  for (const auto& ev : tracer.events()) {
    if (ev.kind != TraceEventKind::kRemoteWrite) continue;
    EXPECT_EQ(ev.tile, 0);
    EXPECT_EQ(ev.dst_tile, 1);
    if (ev.cycle < fault_cycle) ++remote_before;
    if (ev.cycle > fault_cycle) ++remote_after;
  }
  // Commits straddle the fault: the trace shows the true interleaving.
  EXPECT_GT(remote_before, 0);
  EXPECT_GT(remote_after, 0);
  ASSERT_EQ(f.faults().size(), 1u);
  EXPECT_EQ(f.faults()[0].kind, FaultKind::kNoActiveLink);
}

TEST(Trace, RecoveryEventsDumpActionAndAttempt) {
  Tracer tracer;
  TraceEvent ev;
  ev.cycle = 42;
  ev.kind = TraceEventKind::kRecovery;
  ev.tile = 3;
  ev.action = RecoveryAction::kRollback;
  ev.attempt = 2;
  tracer.record(ev);
  const std::string text = tracer.dump();
  EXPECT_NE(text.find("recovery"), std::string::npos);
  EXPECT_NE(text.find("rollback"), std::string::npos);
  EXPECT_NE(text.find("attempt 2"), std::string::npos);
  // Recovery events never touch the retirement histogram.
  EXPECT_EQ(tracer.tile_retirements(3), 0);
}

TEST(Trace, DumpMentionsMnemonics) {
  Fabric f(1, 1);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.tile(0).load_program(prog("  cmul 2, 0, 1\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  const std::string text = tracer.dump();
  EXPECT_NE(text.find("cmul"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(Trace, ClearResetsEverything) {
  Tracer tracer(4);
  TraceEvent ev;
  ev.tile = 0;
  for (int i = 0; i < 10; ++i) tracer.record(ev);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0);
  EXPECT_EQ(tracer.tile_retirements(0), 0);
}

TEST(Trace, DetachedFabricRunsUntraced) {
  Fabric f(1, 1);
  Tracer tracer;
  f.attach_tracer(&tracer);
  f.attach_tracer(nullptr);
  f.tile(0).load_program(prog("  halt\n"));
  f.tile(0).restart();
  f.run(10);
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace cgra::fabric

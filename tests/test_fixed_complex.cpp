// Unit + property tests for the packed Q3.20 complex arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/fixed_complex.hpp"
#include "common/prng.hpp"

namespace cgra {
namespace {

constexpr double kEps = 1.5 / kFixedScale;  // one LSB + rounding headroom

TEST(FixedComplex, PackUnpackRoundTrip) {
  for (const auto& c : {FixedComplex{0, 0}, FixedComplex{1, -1},
                        FixedComplex{kHalfMax, kHalfMin},
                        FixedComplex{-12345, 54321}}) {
    EXPECT_EQ(unpack_complex(pack_complex(c)), c);
  }
}

TEST(FixedComplex, PackIsolatesHalves) {
  // A negative imaginary part must not bleed into the real half.
  const FixedComplex c{1, -1};
  const Word w = pack_complex(c);
  EXPECT_EQ(unpack_complex(w).re, 1);
  EXPECT_EQ(unpack_complex(w).im, -1);
}

TEST(FixedComplex, DoubleConversionAccuracy) {
  const std::complex<double> z{1.25, -0.75};
  EXPECT_NEAR(to_double(to_fixed(z)).real(), 1.25, kEps);
  EXPECT_NEAR(to_double(to_fixed(z)).imag(), -0.75, kEps);
}

TEST(FixedComplex, SaturationAtRangeEdges) {
  const FixedComplex big = to_fixed({100.0, -100.0});
  EXPECT_EQ(big.re, kHalfMax);
  EXPECT_EQ(big.im, kHalfMin);
}

TEST(FixedComplex, AddMatchesDouble) {
  const auto a = to_fixed({0.5, -0.25});
  const auto b = to_fixed({1.0, 0.125});
  const auto r = to_double(cadd(a, b));
  EXPECT_NEAR(r.real(), 1.5, 2 * kEps);
  EXPECT_NEAR(r.imag(), -0.125, 2 * kEps);
}

TEST(FixedComplex, MulMatchesDouble) {
  const auto a = to_fixed({0.5, -0.5});
  const auto b = to_fixed({0.25, 0.75});
  const std::complex<double> expect =
      std::complex<double>{0.5, -0.5} * std::complex<double>{0.25, 0.75};
  const auto r = to_double(cmul(a, b));
  EXPECT_NEAR(r.real(), expect.real(), 4 * kEps);
  EXPECT_NEAR(r.imag(), expect.imag(), 4 * kEps);
}

TEST(FixedComplex, MulByUnitTwiddleKeepsMagnitude) {
  const auto a = to_fixed({1.0, 0.0});
  const auto w = to_fixed({std::cos(0.7), std::sin(0.7)});
  const auto r = to_double(cmul(a, w));
  EXPECT_NEAR(std::abs(r), 1.0, 1e-4);
}

TEST(FixedComplex, WordLevelWrappersAgree) {
  const auto a = to_fixed({0.3, 0.4});
  const auto b = to_fixed({-0.1, 0.9});
  EXPECT_EQ(word_cadd(pack_complex(a), pack_complex(b)),
            pack_complex(cadd(a, b)));
  EXPECT_EQ(word_csub(pack_complex(a), pack_complex(b)),
            pack_complex(csub(a, b)));
  EXPECT_EQ(word_cmul(pack_complex(a), pack_complex(b)),
            pack_complex(cmul(a, b)));
}

// Property: randomized arithmetic stays within error bounds vs double.
class FixedArithProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedArithProperty, RandomizedOpsTrackDouble) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::complex<double> za{rng.next_double(-1.5, 1.5),
                                  rng.next_double(-1.5, 1.5)};
    const std::complex<double> zb{rng.next_double(-1.5, 1.5),
                                  rng.next_double(-1.5, 1.5)};
    const auto fa = to_fixed(za);
    const auto fb = to_fixed(zb);
    const auto sum = to_double(cadd(fa, fb));
    EXPECT_NEAR(sum.real(), (za + zb).real(), 4 * kEps);
    EXPECT_NEAR(sum.imag(), (za + zb).imag(), 4 * kEps);
    const auto prod = to_double(cmul(fa, fb));
    EXPECT_NEAR(prod.real(), (za * zb).real(), 8 * kEps);
    EXPECT_NEAR(prod.imag(), (za * zb).imag(), 8 * kEps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedArithProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234567u));

}  // namespace
}  // namespace cgra

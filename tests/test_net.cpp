// Network-layer tests: protocol round-trips and malformed-frame
// rejection, server echo of service results bit-identical to in-process
// calls, backpressure error replies under saturation, cancel over the
// wire, client timeout/retry, and graceful drain-then-shutdown with
// requests in flight.  This binary runs under ThreadSanitizer in CI
// (label `net` in the tsan preset) — keep every cross-thread interaction
// inside the net/service APIs or properly synchronised.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "cgra/net.hpp"
// Internal socket helpers (not part of the facade): the malformed-frame
// tests drive the server with hand-rolled byte streams.
#include "net/socket_util.hpp"

namespace cgra::net {
namespace {

jpeg::IntBlock test_block(int seed) {
  jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 1) * 37 + i * 13) % 256;
  }
  return raw;
}

service::JobRequest block_request(int seed) {
  service::JpegBlockRequest req;
  req.raw = test_block(seed);
  req.quant = jpeg::scaled_quant(75);
  return service::JobRequest{req};
}

service::JobRequest fft_request(int n, int seed) {
  service::FftRequest req;
  req.n = n;
  req.m = 8;
  req.input.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    req.input[static_cast<std::size_t>(i)] = {
        std::cos(0.1 * (i + seed)) / n, std::sin(0.07 * i - seed) / n};
  }
  return service::JobRequest{req};
}

/// A request the worker chews on for a while — used to hold the single
/// worker busy so saturation behind it is deterministic.
service::JobRequest heavy_request() {
  service::JpegImageRequest req;
  req.image = jpeg::synthetic_image(96, 96, 1);
  req.quality = 50;
  return service::JobRequest{req};
}

/// Server + service + connected client, wired on an ephemeral port.
struct Rig {
  explicit Rig(service::ServiceOptions sopt = {.workers = 2},
               ServerOptions nopt = {})
      : svc(sopt), server(&svc, nopt) {
    const auto s = server.start();
    EXPECT_TRUE(s.ok()) << s.message();
  }
  [[nodiscard]] Client client(int request_timeout_ms = 30000) {
    ClientOptions copt;
    copt.port = server.port();
    copt.request_timeout_ms = request_timeout_ms;
    return Client(copt);
  }
  service::Service svc;
  Server server;
};

// --- protocol ------------------------------------------------------------

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader header;
  header.type = MsgType::kFft;
  header.payload_len = 1234;
  std::uint8_t bytes[kHeaderSize];
  encode_header(header, bytes);
  FrameHeader parsed;
  ASSERT_TRUE(decode_header(bytes, &parsed).ok());
  EXPECT_EQ(parsed.type, MsgType::kFft);
  EXPECT_EQ(parsed.payload_len, 1234u);
}

TEST(Protocol, HeaderRejectsBadMagicVersionTypeAndLength) {
  FrameHeader header;
  header.payload_len = 8;
  std::uint8_t good[kHeaderSize];
  encode_header(header, good);
  FrameHeader out;

  std::uint8_t bad[kHeaderSize];
  std::memcpy(bad, good, kHeaderSize);
  bad[0] ^= 0xFF;  // magic
  EXPECT_FALSE(decode_header(bad, &out).ok());

  std::memcpy(bad, good, kHeaderSize);
  bad[4] = kVersion + 1;  // version
  EXPECT_FALSE(decode_header(bad, &out).ok());

  std::memcpy(bad, good, kHeaderSize);
  bad[5] = 0;  // unknown type
  EXPECT_FALSE(decode_header(bad, &out).ok());

  std::memcpy(bad, good, kHeaderSize);
  bad[11] = 0xFF;  // payload length > kMaxPayload
  EXPECT_FALSE(decode_header(bad, &out).ok());

  EXPECT_FALSE(decode_header(std::span(good, kHeaderSize - 1), &out).ok());
}

TEST(Protocol, JobRequestRoundTripsAllKinds) {
  // JPEG block with a fault plan + non-default policy.
  service::JpegBlockRequest block;
  block.raw = test_block(3);
  block.quant = jpeg::scaled_quant(40);
  block.rows = 2;
  block.cols = 7;
  block.plan.seed = 77;
  block.plan.flip_dmem_bit(100, 3).kill_tile(500, 5).corrupt_icap(2, 4);
  block.policy.max_icap_retries = 7;
  block.policy.watchdog.margin = 8.0;
  block.policy.rebalance_algo = mapping::RebalanceAlgorithm::kTwo;

  service::JpegImageRequest image;
  image.image = jpeg::synthetic_image(24, 16, 5);
  image.quality = 80;

  service::DseSweepRequest dse;
  dse.net = jpeg::jpeg_split_pipeline();
  dse.max_tiles = 6;
  dse.algorithm = mapping::RebalanceAlgorithm::kOpt;
  dse.params.allow_pinning = false;

  const std::vector<service::JobRequest> requests = {
      service::JobRequest{block}, service::JobRequest{image},
      fft_request(32, 1), service::JobRequest{dse}};
  for (std::size_t i = 0; i < requests.size(); ++i) {
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(encode_job_request(42 + i, requests[i], &bytes).ok());
    Frame frame;
    ASSERT_TRUE(decode_header(bytes, &frame.header).ok());
    frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
    Request req;
    ASSERT_TRUE(decode_request(frame, &req).ok()) << i;
    EXPECT_EQ(req.request_id, 42 + i);
    EXPECT_EQ(req.job.index(), requests[i].index());
  }

  // Spot-check the deep fields survived.
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(
      encode_job_request(7, service::JobRequest{block}, &bytes).ok());
  Frame frame;
  ASSERT_TRUE(decode_header(bytes, &frame.header).ok());
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  Request req;
  ASSERT_TRUE(decode_request(frame, &req).ok());
  const auto& rb = std::get<service::JpegBlockRequest>(req.job);
  EXPECT_EQ(rb.raw, block.raw);
  EXPECT_EQ(rb.quant, block.quant);
  ASSERT_EQ(rb.plan.events.size(), block.plan.events.size());
  EXPECT_EQ(rb.plan.seed, 77u);
  EXPECT_EQ(rb.plan.events[1].action, faults::FaultAction::kKillTile);
  EXPECT_EQ(rb.policy.max_icap_retries, 7);
  EXPECT_EQ(rb.policy.rebalance_algo, mapping::RebalanceAlgorithm::kTwo);
  EXPECT_DOUBLE_EQ(rb.policy.watchdog.margin, 8.0);
}

TEST(Protocol, DecodeRejectsTruncatedAndOversizedPayloads) {
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_job_request(1, fft_request(32, 0), &bytes).ok());
  Frame frame;
  ASSERT_TRUE(decode_header(bytes, &frame.header).ok());

  // Truncated: drop the last 8 bytes of the payload.
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end() - 8);
  frame.header.payload_len = static_cast<std::uint32_t>(frame.payload.size());
  Request req;
  EXPECT_FALSE(decode_request(frame, &req).ok());

  // Trailing garbage after a valid body.
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  frame.payload.push_back(0);
  EXPECT_FALSE(decode_request(frame, &req).ok());

  // Oversized element count: claim 2^30 FFT points.
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  // request id + v3 options (deadline, idempotency id, trace ctx) + n,m,cols
  const std::size_t count_at = 8 + 28 + 12;
  frame.payload[count_at + 3] = 0x40;
  const Status s = decode_request(frame, &req);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bound"), std::string::npos) << s.message();
}

TEST(Protocol, ResponseRoundTrip) {
  service::JobResult result;
  result.status = Status();
  service::FftJobResult payload;
  payload.epochs = 5;
  payload.timeline.epoch_compute_ns = 123.5;
  payload.timeline.reconfig_ns = 67.25;
  payload.output = {{0.5, -0.25}, {1.0, 2.0}};
  result.payload = payload;
  Request req;
  req.type = MsgType::kFft;
  req.request_id = 99;
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_job_result(req, result, &bytes).ok());
  Frame frame;
  ASSERT_TRUE(decode_header(bytes, &frame.header).ok());
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  Response resp;
  ASSERT_TRUE(decode_response(frame, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kFftResult);
  EXPECT_EQ(resp.request_id, 99u);
  const auto& p = std::get<service::FftJobResult>(resp.result.payload);
  EXPECT_EQ(p.output, payload.output);
  EXPECT_EQ(p.epochs, 5);
  EXPECT_DOUBLE_EQ(p.timeline.reconfig_ns, 67.25);

  // A failed job encodes as a kError frame carrying the message.
  result.status = Status::error("it broke");
  ASSERT_TRUE(encode_job_result(req, result, &bytes).ok());
  ASSERT_TRUE(decode_header(bytes, &frame.header).ok());
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  ASSERT_TRUE(decode_response(frame, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_FALSE(resp.result.ok());
  EXPECT_EQ(resp.result.status.message(), "it broke");
}

// --- protocol v3: trace context ------------------------------------------

TEST(Protocol, V3JobFrameCarriesTraceContext) {
  JobFrameOptions wire;
  wire.deadline_ms = 1500;
  wire.idempotency_id = 0xABCD;
  wire.trace = {0x1122334455667788ULL, 0x99AABBCCDDEEFF00ULL};
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_job_request(9, fft_request(32, 0), &bytes, wire).ok());
  EXPECT_EQ(bytes[4], kVersion);
  // Trace id occupies frame bytes 32..39 (LE), parent span id 40..47.
  EXPECT_EQ(bytes[32], 0x88);
  EXPECT_EQ(bytes[39], 0x11);
  EXPECT_EQ(bytes[40], 0x00);
  EXPECT_EQ(bytes[47], 0x99);
  Frame frame;
  ASSERT_TRUE(decode_header(bytes, &frame.header).ok());
  frame.payload.assign(bytes.begin() + kHeaderSize, bytes.end());
  Request req;
  ASSERT_TRUE(decode_request(frame, &req).ok());
  EXPECT_EQ(req.options.version, kVersion);
  EXPECT_EQ(req.options.trace.trace_id, wire.trace.trace_id);
  EXPECT_EQ(req.options.trace.parent_span_id, wire.trace.parent_span_id);
  EXPECT_EQ(req.options.deadline_ms, 1500u);
  EXPECT_EQ(req.options.idempotency_id, 0xABCDu);
}

TEST(Protocol, V2FramesInteropWithV3Decoder) {
  JobFrameOptions wire;
  wire.version = 2;
  wire.deadline_ms = 7;
  wire.trace = {123, 456};  // a v2 frame has nowhere to carry this
  std::vector<std::uint8_t> v2;
  ASSERT_TRUE(encode_job_request(4, fft_request(32, 0), &v2, wire).ok());
  EXPECT_EQ(v2[4], 2);
  wire.version = kVersion;
  std::vector<std::uint8_t> v3;
  ASSERT_TRUE(encode_job_request(4, fft_request(32, 0), &v3, wire).ok());
  EXPECT_EQ(v3.size(), v2.size() + 16);  // exactly the trace context

  Frame frame;
  ASSERT_TRUE(decode_header(v2, &frame.header).ok());
  EXPECT_EQ(frame.header.version, 2);
  frame.payload.assign(v2.begin() + kHeaderSize, v2.end());
  Request req;
  ASSERT_TRUE(decode_request(frame, &req).ok());
  EXPECT_EQ(req.options.version, 2);
  EXPECT_FALSE(req.options.trace.valid());  // v2 decodes as untraced
  EXPECT_EQ(req.options.deadline_ms, 7u);

  // stamp_frame_version rewrites the version byte in place; out-of-range
  // versions and short buffers are no-ops.
  stamp_frame_version(&v3, 2);
  EXPECT_EQ(v3[4], 2);
  stamp_frame_version(&v3, 1);  // below kMinVersion
  EXPECT_EQ(v3[4], 2);
  std::vector<std::uint8_t> tiny(4, 0);
  stamp_frame_version(&tiny, 2);
  EXPECT_EQ(tiny, std::vector<std::uint8_t>(4, 0));

  // A version-1 header is rejected outright.
  std::vector<std::uint8_t> v1 = v2;
  v1[4] = 1;
  FrameHeader hdr;
  EXPECT_FALSE(decode_header(v1, &hdr).ok());
}

TEST(Protocol, TraceDumpRoundTrip) {
  const auto reqb = encode_trace_dump(5);
  Frame frame;
  ASSERT_TRUE(decode_header(reqb, &frame.header).ok());
  frame.payload.assign(reqb.begin() + kHeaderSize, reqb.end());
  Request req;
  ASSERT_TRUE(decode_request(frame, &req).ok());
  EXPECT_EQ(req.type, MsgType::kTraceDump);
  EXPECT_EQ(req.request_id, 5u);

  TraceDumpInfo info;
  info.anomalies = 3;
  info.spans = 17;
  info.events_recorded = 1000;
  info.events_dropped = 24;
  const std::string json = "{\"traceEvents\":[]}";
  info.trace_json.assign(json.begin(), json.end());
  const auto respb = encode_trace_dump_result(5, info);
  ASSERT_TRUE(decode_header(respb, &frame.header).ok());
  frame.payload.assign(respb.begin() + kHeaderSize, respb.end());
  Response resp;
  ASSERT_TRUE(decode_response(frame, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kTraceDumpResult);
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_EQ(resp.trace_dump.anomalies, 3u);
  EXPECT_EQ(resp.trace_dump.spans, 17u);
  EXPECT_EQ(resp.trace_dump.events_recorded, 1000u);
  EXPECT_EQ(resp.trace_dump.events_dropped, 24u);
  EXPECT_EQ(resp.trace_dump.trace_json, info.trace_json);
}

// --- server echo ---------------------------------------------------------

TEST(NetServer, BlockAndFftBitIdenticalToInProcess) {
  Rig rig;
  auto client = rig.client();
  for (int seed = 0; seed < 3; ++seed) {
    const auto breq = block_request(seed);
    Response remote;
    ASSERT_TRUE(client.call(breq, &remote).ok());
    ASSERT_TRUE(remote.result.ok()) << remote.result.status.message();
    const auto direct = rig.svc.wait(rig.svc.submit(breq).handle);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(
        std::get<service::JpegBlockJobResult>(remote.result.payload).zigzagged,
        std::get<service::JpegBlockJobResult>(direct.payload).zigzagged);

    const auto freq = fft_request(32, seed);
    ASSERT_TRUE(client.call(freq, &remote).ok());
    ASSERT_TRUE(remote.result.ok()) << remote.result.status.message();
    const auto fdirect = rig.svc.wait(rig.svc.submit(freq).handle);
    ASSERT_TRUE(fdirect.ok());
    // Doubles compared with ==: the wire carries exact bit patterns.
    EXPECT_EQ(std::get<service::FftJobResult>(remote.result.payload).output,
              std::get<service::FftJobResult>(fdirect.payload).output);
  }
}

TEST(NetServer, ImageReplyIsByteIdenticalJfif) {
  Rig rig;
  auto client = rig.client();
  service::JpegImageRequest req;
  req.image = jpeg::synthetic_image(32, 24, 3);
  req.quality = 70;
  Response resp;
  ASSERT_TRUE(client.call(service::JobRequest{req}, &resp).ok());
  ASSERT_TRUE(resp.result.ok());
  EXPECT_EQ(std::get<service::JpegImageJobResult>(resp.result.payload).jfif,
            jpeg::encode_image(req.image, req.quality));
}

TEST(NetServer, MalformedPayloadGetsErrorReplyAndStreamSurvives) {
  Rig rig;
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());

  // Hand-roll a valid frame whose FFT body claims an oversized count.
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(encode_job_request(5, fft_request(32, 0), &bytes).ok());
  bytes[kHeaderSize + 8 + 28 + 12 + 3] = 0x40;  // input count |= 2^30
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_TRUE(write_all(fd, bytes).ok());
  Frame reply;
  Status err;
  ASSERT_EQ(read_frame(fd, 10000, nullptr, &reply, &err),
            ReadOutcome::kFrame);
  Response resp;
  ASSERT_TRUE(decode_response(reply, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(resp.request_id, 5u);

  // Same socket still serves well-formed requests afterwards.
  ASSERT_TRUE(write_all(fd, encode_ping(6)).ok());
  ASSERT_EQ(read_frame(fd, 10000, nullptr, &reply, &err),
            ReadOutcome::kFrame);
  ASSERT_TRUE(decode_response(reply, &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kPong);
  ::close(fd);
}

TEST(NetServer, BadMagicClosesConnection) {
  Rig rig;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  std::vector<std::uint8_t> garbage(kHeaderSize, 0xAB);
  ASSERT_TRUE(write_all(fd, garbage).ok());
  Frame reply;
  Status err;
  EXPECT_EQ(read_frame(fd, 10000, nullptr, &reply, &err),
            ReadOutcome::kClosed);
  ::close(fd);
}

// --- backpressure --------------------------------------------------------

TEST(NetServer, ServiceSaturationSurfacesAsErrorReply) {
  // One worker, queue of 1: occupy the worker with a heavy job, fill the
  // queue behind it, and the network request must bounce with the
  // service's saturation Status instead of being dropped.
  Rig rig({.workers = 1, .queue_capacity = 1});
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());  // connection up before saturating

  auto heavy = rig.svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());
  // Wait until the worker has dequeued the heavy job so the queue slot
  // is free for the filler (submit/dequeue race otherwise).
  while (rig.svc.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto filler = rig.svc.submit(block_request(0));
  ASSERT_TRUE(filler.accepted());

  Response resp;
  ASSERT_TRUE(client.call(block_request(1), &resp).ok());
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_NE(resp.result.status.message().find("saturated"),
            std::string::npos)
      << resp.result.status.message();
  EXPECT_GE(rig.server.counter("net.backpressure.service"), 1);

  (void)rig.svc.wait(heavy.handle);
  (void)rig.svc.wait(filler.handle);
}

TEST(NetServer, ConnectionInflightCapSurfacesAsErrorReply) {
  // In-flight cap of 1 on the connection: while one job waits behind a
  // heavy in-process job, a second pipelined request must bounce.
  Rig rig({.workers = 1, .queue_capacity = 64},
          {.max_inflight_per_connection = 1});
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());

  auto heavy = rig.svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());

  std::uint64_t id1 = 0;
  std::uint64_t id2 = 0;
  ASSERT_TRUE(client.send(block_request(0), &id1).ok());
  ASSERT_TRUE(client.send(block_request(1), &id2).ok());

  // Replies arrive in request order: job 1 (after the heavy job clears),
  // then the cap rejection for job 2.
  Response first;
  ASSERT_TRUE(client.receive(&first).ok());
  EXPECT_EQ(first.request_id, id1);
  EXPECT_TRUE(first.result.ok());
  Response second;
  ASSERT_TRUE(client.receive(&second).ok());
  EXPECT_EQ(second.request_id, id2);
  EXPECT_EQ(second.type, MsgType::kError);
  EXPECT_NE(second.result.status.message().find("in-flight"),
            std::string::npos);
  EXPECT_GE(rig.server.counter("net.backpressure.connection"), 1);

  (void)rig.svc.wait(heavy.handle);
}

TEST(NetServer, SlowReaderIsShedWithoutStallingPeers) {
  // One shard so the slow reader and the healthy peer share an event
  // loop: shedding must be per-connection, not per-shard.
  Rig rig({.workers = 2}, {.shards = 1, .write_backlog_limit = 64 * 1024});

  // The slow reader: a tiny receive window, pipelined pings, and it
  // never reads a byte back.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;  // before connect(), so the window stays small
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  auto peer = rig.client();
  ASSERT_TRUE(peer.ping().ok());

  // Pong replies pile up once the kernel buffers fill; the cap must trip
  // well before this many bursts (the bound only makes a regression fail
  // instead of hang).
  std::vector<std::uint8_t> burst;
  for (std::uint64_t i = 1; i <= 4096; ++i) {
    const auto ping = encode_ping(i);
    burst.insert(burst.end(), ping.begin(), ping.end());
  }
  for (int i = 0;
       i < 512 && rig.server.counter("net.conn_closed.write_backlog") == 0;
       ++i) {
    if (!write_all(fd, burst).ok()) break;  // server already shed us
    // The shard keeps serving its other connection the whole time.
    ASSERT_TRUE(peer.ping().ok());
  }
  for (int i = 0;
       i < 5000 && rig.server.counter("net.conn_closed.write_backlog") == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rig.server.counter("net.conn_closed.write_backlog"), 1);
  EXPECT_TRUE(peer.ping().ok());
  ::close(fd);
}

TEST(NetServer, AdmissionControlShedsWithUnavailable) {
  // Bucket of 2 tokens, effectively no refill: the third pipelined job
  // must be shed with a retryable kUnavailable — never silently dropped.
  Rig rig({.workers = 1},
          {.admission_rate = 1e-9, .admission_burst = 2});
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());  // control frames bypass admission

  std::uint64_t ids[3] = {};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send(block_request(i), &ids[i]).ok());
  }
  Response resp;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.receive(&resp).ok());
    EXPECT_EQ(resp.request_id, ids[i]);
    EXPECT_TRUE(resp.result.ok()) << resp.result.status.message();
  }
  ASSERT_TRUE(client.receive(&resp).ok());
  EXPECT_EQ(resp.request_id, ids[2]);
  EXPECT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(resp.result.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(resp.result.status.message().find("admission"),
            std::string::npos);
  EXPECT_EQ(rig.server.counter("net.admission.shed"), 1);

  // Pings still pass after the shed: only job frames spend tokens.
  EXPECT_TRUE(client.ping().ok());
}

// --- cancel + stats ------------------------------------------------------

TEST(NetServer, CancelQueuedJobOverTheWire) {
  Rig rig({.workers = 1, .queue_capacity = 64});
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());

  auto heavy = rig.svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());
  while (rig.svc.queue_depth() > 0) {  // worker busy on the heavy job
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Pipeline the job and its cancel: replies are strictly in request
  // order, so the (cancelled) job reply lands first, then the ack.
  std::uint64_t id = 0;
  ASSERT_TRUE(client.send(block_request(0), &id).ok());
  std::uint64_t cancel_id = 0;
  ASSERT_TRUE(client.send_cancel(id, &cancel_id).ok());

  Response job_reply;
  ASSERT_TRUE(client.receive(&job_reply).ok());
  EXPECT_EQ(job_reply.request_id, id);
  Response ack;
  ASSERT_TRUE(client.receive(&ack).ok());
  EXPECT_EQ(ack.request_id, cancel_id);
  ASSERT_EQ(ack.type, MsgType::kCancelResult);
  // Cancel races the worker: it may have started the block after the
  // heavy job.  Either way the ack and the job reply must agree.
  if (ack.cancelled) {
    EXPECT_EQ(job_reply.type, MsgType::kError);
    EXPECT_NE(job_reply.result.status.message().find("cancel"),
              std::string::npos);
  } else {
    EXPECT_TRUE(job_reply.result.ok());
  }
  // Blocking cancel of an unknown id (connection idle now): false, not
  // an error.
  bool cancelled = true;
  ASSERT_TRUE(client.cancel(987654, &cancelled).ok());
  EXPECT_FALSE(cancelled);
  (void)rig.svc.wait(heavy.handle);
}

TEST(NetServer, StatsMergeServiceAndNetCounters) {
  Rig rig;
  auto client = rig.client();
  Response resp;
  ASSERT_TRUE(client.call(block_request(0), &resp).ok());
  std::vector<obs::MetricSample> stats;
  ASSERT_TRUE(client.stats(&stats).ok());
  bool saw_service = false;
  bool saw_net = false;
  for (const auto& s : stats) {
    if (s.name == "service.jobs.completed" && s.value >= 1) {
      saw_service = true;
    }
    if (s.name == "net.requests" && s.value >= 1) saw_net = true;
  }
  EXPECT_TRUE(saw_service);
  EXPECT_TRUE(saw_net);
  EXPECT_GE(rig.server.span_count(), 1u);  // per-request spans recorded

  // The latency histograms surface as percentile gauges in the stats.
  bool saw_p99 = false;
  for (const auto& s : stats) {
    if (s.name == "net.latency_ms.jpeg.block.p99" && s.value > 0.0) {
      saw_p99 = true;
    }
  }
#ifndef CGRA_OBS_OFF
  EXPECT_TRUE(saw_p99);
#endif
}

// --- wire tracing ---------------------------------------------------------

TEST(NetServer, V2ClientInteropAgainstV3Server) {
  Rig rig;
  ClientOptions copt;
  copt.port = rig.server.port();
  copt.protocol_version = 2;
  Client client(copt);
  ASSERT_TRUE(client.ping().ok());
  Response resp;
  ASSERT_TRUE(client.call(block_request(2), &resp).ok());
  ASSERT_TRUE(resp.result.ok()) << resp.result.status.message();
  const auto direct = rig.svc.wait(rig.svc.submit(block_request(2)).handle);
  EXPECT_EQ(
      std::get<service::JpegBlockJobResult>(resp.result.payload).zigzagged,
      std::get<service::JpegBlockJobResult>(direct.payload).zigzagged);

  // Raw-socket check: the reply to a v2-stamped frame comes back v2 (a
  // real v2 client would reject anything newer).
  std::vector<std::uint8_t> bytes;
  JobFrameOptions wire;
  wire.version = 2;
  ASSERT_TRUE(encode_job_request(77, fft_request(32, 0), &bytes, wire).ok());
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_TRUE(write_all(fd, bytes).ok());
  Frame reply;
  Status err;
  ASSERT_EQ(read_frame(fd, 10000, nullptr, &reply, &err),
            ReadOutcome::kFrame);
  EXPECT_EQ(reply.header.version, 2);
  ::close(fd);
}

TEST(NetServer, EndToEndTraceSharesOneTraceIdAcrossLayers) {
  // One tracer behind server + service, a second in the client; after a
  // traced call, the merged export must show the SAME trace id on spans
  // from at least four layers (client, connection, queue, fusion/fabric).
  obs::Tracer server_tracer;
  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.tracer = &server_tracer;
  service::Service svc(sopt);
  ServerOptions nopt;
  nopt.tracer = &server_tracer;
  Server server(&svc, nopt);
  ASSERT_TRUE(server.start().ok());

  obs::Tracer client_tracer;
  ClientOptions copt;
  copt.port = server.port();
  copt.tracer = &client_tracer;
  Client client(copt);

  CallOptions call;
  call.trace = client_tracer.make_context();
  call.deadline_ms = 30000;
  Response resp;
  ASSERT_TRUE(client.call(block_request(1), &resp, call).ok());
  ASSERT_TRUE(resp.result.ok()) << resp.result.status.message();

  TraceDumpInfo dump;
  ASSERT_TRUE(client.trace_dump(&dump).ok());
  EXPECT_GT(dump.spans, 0u);
#ifndef CGRA_OBS_OFF
  EXPECT_GT(dump.events_recorded, 0u);
#endif
  const std::string server_json(dump.trace_json.begin(),
                                dump.trace_json.end());
  std::vector<obs::Span> server_spans;
  ASSERT_TRUE(obs::parse_chrome_trace(server_json, &server_spans).ok());
  client_tracer.merge_spans(server_spans);

  const std::string merged = client_tracer.to_chrome_json("test");
  ASSERT_TRUE(obs::validate_chrome_trace(merged).ok());
  std::vector<obs::Span> all;
  ASSERT_TRUE(obs::parse_chrome_trace(merged, &all).ok());
  const std::string hex = obs::Tracer::trace_hex(call.trace.trace_id);
  std::set<int> layers;
  for (const auto& s : all) {
    for (const auto& a : s.args) {
      if (a.key == "trace" && a.value == hex) layers.insert(s.track);
    }
  }
  EXPECT_GE(layers.size(), 4u);
  server.stop();
}

// --- client timeout / retry ----------------------------------------------

TEST(NetClient, ConnectRetriesUntilServerAppears) {
  // Reserve a port, start the real server on it only after a delay; the
  // client's connect-retry schedule must ride over the refused attempts.
  service::Service svc(service::ServiceOptions{.workers = 1});
  Server server(&svc);
  ASSERT_TRUE(server.start().ok());
  const std::uint16_t port = server.port();

  ClientOptions copt;
  copt.port = port;
  copt.max_retries = 8;
  copt.retry_backoff_ms = 25;
  Client client(copt);

  server.stop();  // now the port refuses connections
  std::thread restarter;
  service::Service svc2(service::ServiceOptions{.workers = 1});
  Server server2(&svc2, ServerOptions{.port = port});
  restarter = std::thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ASSERT_TRUE(server2.start().ok());
  });
  EXPECT_TRUE(client.ping().ok());
  EXPECT_GT(client.connect_attempts(), 1);
  restarter.join();
}

TEST(NetClient, RequestTimesOutAgainstBlackHole) {
  // A listener that accepts and never replies: the client must give up
  // after its per-attempt timeout x (1 + retries), not hang.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      ::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(listener, 4), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len);

  ClientOptions copt;
  copt.port = ntohs(bound.sin_port);
  copt.request_timeout_ms = 100;
  copt.max_retries = 1;
  copt.retry_backoff_ms = 10;
  Client client(copt);
  const auto t0 = std::chrono::steady_clock::now();
  const Status s = client.ping();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no reply"), std::string::npos) << s.message();
  EXPECT_GE(elapsed.count(), 200);   // two attempts of >= 100 ms each
  EXPECT_LT(elapsed.count(), 5000);  // but it did give up
  ::close(listener);
}

// --- shutdown ------------------------------------------------------------

TEST(NetServer, GracefulShutdownFlushesInflightReplies) {
  Rig rig({.workers = 1, .queue_capacity = 64});
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());

  // Queue several jobs, then stop the server while they are in flight.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t id = 0;
    ASSERT_TRUE(client.send(block_request(i), &id).ok());
    ids.push_back(id);
  }
  // Drain covers requests the server has *received*; wait until all four
  // (plus the ping) crossed before pulling the plug, so none are lost in
  // the socket buffer when the reader stops.
#ifndef CGRA_OBS_OFF
  while (rig.server.counter("net.requests") < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
#else
  // Counters read zero with observability compiled out; give the reader
  // a generous moment to pull the four frames off loopback instead.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
#endif
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    rig.server.stop();
    stopped.store(true);
  });

  // Every queued reply is still delivered, in order.  (Collect first,
  // assert after the join: an ASSERT return here would leak the thread.)
  std::vector<Response> replies(ids.size());
  std::vector<Status> reads;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    reads.push_back(client.receive(&replies[i]));
  }
  stopper.join();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(reads[i].ok()) << i << ": " << reads[i].message();
    EXPECT_EQ(replies[i].request_id, ids[i]);
    EXPECT_TRUE(replies[i].result.ok())
        << replies[i].result.status.message();
  }
  EXPECT_TRUE(stopped.load());
  EXPECT_FALSE(rig.server.running());

  // And the port no longer accepts work.
  ClientOptions copt;
  copt.port = rig.server.port();
  copt.max_retries = 0;
  copt.connect_timeout_ms = 200;
  Client late(copt);
  EXPECT_FALSE(late.ping().ok());
}

TEST(NetServer, StopIsIdempotentAndDestructorSafe) {
  Rig rig;
  auto client = rig.client();
  ASSERT_TRUE(client.ping().ok());
  rig.server.stop();
  rig.server.stop();  // no-op
}

}  // namespace
}  // namespace cgra::net

// End-to-end fabric FFT tests: the cycle-level simulation must match the
// double-precision reference within fixed-point tolerance, and the epoch
// accounting must behave (Equation 1 terms).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft/fabric_fft.hpp"
#include "common/prng.hpp"

namespace cgra::fft {
namespace {

std::vector<Cplx> random_signal(int n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Cplx> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
  return x;
}

/// Reference output scaled the way the fabric scales (inputs / N).
std::vector<Cplx> scaled_reference(const std::vector<Cplx>& x) {
  auto out = fft(x);
  for (auto& v : out) v /= static_cast<double>(x.size());
  return out;
}

TEST(ElementPosition, Stage0CoLocatesButterflies) {
  const auto g = make_geometry(64, 8);
  for (int e = 0; e < g.n; ++e) {
    const auto pa = element_position(g, 0, e % 32);
    const auto pb = element_position(g, 0, e % 32 + 32);
    EXPECT_EQ(pa.row, pb.row);
    EXPECT_EQ(pb.slot, pa.slot + g.m / 2);
  }
}

TEST(ElementPosition, EveryStageIsAPermutation) {
  const auto g = make_geometry(64, 8);
  for (int s = 0; s < g.stages; ++s) {
    std::vector<int> seen(static_cast<std::size_t>(g.n), 0);
    for (int e = 0; e < g.n; ++e) {
      const auto p = element_position(g, s, e);
      ASSERT_GE(p.row, 0);
      ASSERT_LT(p.row, g.rows);
      ASSERT_GE(p.slot, 0);
      ASSERT_LT(p.slot, g.m);
      ++seen[static_cast<std::size_t>(p.row * g.m + p.slot)];
    }
    for (const int c : seen) EXPECT_EQ(c, 1) << "stage " << s;
  }
}

class FabricFftSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FabricFftSizes, MatchesReference) {
  const auto [n, m] = GetParam();
  const auto g = make_geometry(n, m);
  const auto x = random_signal(n, 0xF00D + static_cast<unsigned>(n));
  const auto result = run_fabric_fft(g, x);
  ASSERT_TRUE(result.ok()) << "faults: " << result.faults.size();
  const auto expect = scaled_reference(x);
  const double err = rms_error(result.output, expect);
  // Q3.20 inputs scaled by 1/N: tolerance grows with log2(N).
  EXPECT_LT(err, 3e-4 * g.stages) << "n=" << n << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FabricFftSizes,
    ::testing::Values(std::make_pair(16, 8), std::make_pair(32, 8),
                      std::make_pair(64, 8), std::make_pair(64, 16),
                      std::make_pair(128, 16), std::make_pair(256, 32)));

TEST(FabricFft, SingleTileGeometry) {
  // M == N: one tile; inter-stage shuffles are all in-tile, so no link is
  // ever reconfigured even though redistribution epochs still run.
  const auto g = make_geometry(16, 16);
  const auto x = random_signal(16, 99);
  const auto result = run_fabric_fft(g, x);
  ASSERT_TRUE(result.ok());
  for (const auto& tr : result.timeline.transitions) {
    EXPECT_EQ(tr.links_changed, 0);
  }
  EXPECT_LT(rms_error(result.output, scaled_reference(x)), 1e-3);
}

TEST(FabricFft, ImpulseThroughFabric) {
  const auto g = make_geometry(64, 8);
  std::vector<Cplx> x(64, Cplx{0, 0});
  x[0] = {1.0, 0.0};
  const auto result = run_fabric_fft(g, x);
  ASSERT_TRUE(result.ok());
  for (const auto& v : result.output) {
    EXPECT_NEAR(v.real(), 1.0 / 64.0, 1e-4);
    EXPECT_NEAR(v.imag(), 0.0, 1e-4);
  }
}

TEST(FabricFft, TimelineAccountsReconfiguration) {
  const auto g = make_geometry(32, 8);
  const auto x = random_signal(32, 5);
  const auto result = run_fabric_fft(g, x);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.timeline.reconfig_ns, 0.0);
  EXPECT_GT(result.timeline.epoch_compute_ns, 0.0);
  EXPECT_GT(result.epochs, g.stages);  // stages + redistribution epochs
}

TEST(FabricFft, LinkCostRaisesReconfigTerm) {
  const auto g = make_geometry(32, 8);
  const auto x = random_signal(32, 6);
  FabricFftOptions cheap;
  cheap.link_cost_ns = 0.0;
  FabricFftOptions dear;
  dear.link_cost_ns = 1000.0;
  const auto r0 = run_fabric_fft(g, x, cheap);
  const auto r1 = run_fabric_fft(g, x, dear);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1.timeline.reconfig_ns, r0.timeline.reconfig_ns);
  // Functional output must not depend on the cost model.
  EXPECT_LT(rms_error(r0.output, r1.output), 1e-12);
}

TEST(FabricFft, MeasuredBfCyclesMatchTable1Shape) {
  // Table 1's runtimes rise for later stages (more loop groups); ours must
  // show the same monotone trend within the local-kernel stages, and the
  // early (pair-kernel) stages must all cost the same.
  const auto g = make_geometry(1024);
  std::vector<std::int64_t> cycles;
  for (int s = 0; s < g.stages; ++s) {
    cycles.push_back(measure_bf_cycles(g, s));
    ASSERT_GT(cycles.back(), 0) << "stage " << s;
  }
  for (int s = 1; s < g.cross_stages(); ++s) {
    EXPECT_EQ(cycles[static_cast<std::size_t>(s)], cycles[0]);
  }
  // Deep stages pay more group overhead than the first local stage.
  EXPECT_GT(cycles.back(), cycles[static_cast<std::size_t>(g.cross_stages())]);
}

TEST(FabricFft, MeasuredCopyMatchesPaperShape) {
  // vcp copies M/2 words, hcp M words: hcp ~ 2x vcp (Table 1: 789 vs 1557).
  const std::int64_t vcp = measure_copy_cycles(128, 64);
  const std::int64_t hcp = measure_copy_cycles(128, 128);
  ASSERT_GT(vcp, 0);
  ASSERT_GT(hcp, 0);
  EXPECT_NEAR(static_cast<double>(hcp) / static_cast<double>(vcp), 2.0, 0.1);
  // Absolute scale: a 5-instruction/word loop at 2.5 ns lands near the
  // paper's 789 ns / 1557 ns measurements.
  EXPECT_NEAR(cycles_to_ns(vcp), 789.0, 250.0);
  EXPECT_NEAR(cycles_to_ns(hcp), 1557.0, 500.0);
}

TEST(FabricFft, RejectsWrongInputSize) {
  const auto g = make_geometry(32, 8);
  const auto result = run_fabric_fft(g, random_signal(16, 1));
  EXPECT_FALSE(result.ok());
}

// ---- multi-column designs (the paper's pipelined layouts) ----

class FabricFftColumns : public ::testing::TestWithParam<int> {};

TEST_P(FabricFftColumns, MultiColumnMatchesReference) {
  const int cols = GetParam();
  const auto g = make_geometry(64, 8);  // 6 stages, 8 rows
  ASSERT_EQ(g.stages % cols, 0);
  const auto x = random_signal(64, 0xC0FFEE + static_cast<unsigned>(cols));
  FabricFftOptions opt;
  opt.cols = cols;
  const auto result = run_fabric_fft(g, x, opt);
  ASSERT_TRUE(result.ok()) << "cols=" << cols;
  EXPECT_LT(rms_error(result.output, scaled_reference(x)), 3e-4 * g.stages);
}

INSTANTIATE_TEST_SUITE_P(ColumnCounts, FabricFftColumns,
                         ::testing::Values(1, 2, 3, 6));

TEST(FabricFft, MultiColumnUsesHorizontalLinks) {
  // With more than one column the inter-column (hcp) transfers must drive
  // east links, visible as additional link reconfigurations.
  const auto g = make_geometry(64, 8);
  const auto x = random_signal(64, 4);
  FabricFftOptions one;
  one.cols = 1;
  one.link_cost_ns = 10.0;
  FabricFftOptions two;
  two.cols = 2;
  two.link_cost_ns = 10.0;
  const auto r1 = run_fabric_fft(g, x, one);
  const auto r2 = run_fabric_fft(g, x, two);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  auto total_links = [](const FabricFftResult& r) {
    int n = 0;
    for (const auto& t : r.timeline.transitions) n += t.links_changed;
    return n;
  };
  EXPECT_GT(total_links(r2), total_links(r1));
  // And functionally identical.
  EXPECT_LT(rms_error(r1.output, r2.output), 1e-12);
}

TEST(FabricFft, RejectsNonDivisorColumns) {
  const auto g = make_geometry(64, 8);  // 6 stages
  FabricFftOptions opt;
  opt.cols = 4;
  const auto result = run_fabric_fft(g, random_signal(64, 1), opt);
  EXPECT_FALSE(result.ok());
}

TEST(FabricFft, FullySpatialDesignKeepsAllKernelsPinned) {
  // cols == stages: each tile owns one stage; after its first load the BF
  // kernel never reloads on compute columns that no copy program touches.
  const auto g = make_geometry(16, 8);  // 4 stages, 2 rows
  FabricFftOptions opt;
  opt.cols = 4;
  const auto x = random_signal(16, 9);
  const auto result = run_fabric_fft(g, x, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(rms_error(result.output, scaled_reference(x)), 2e-3);
}

}  // namespace
}  // namespace cgra::fft

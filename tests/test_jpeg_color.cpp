// Color JPEG tests: conversions, chrominance tables, 4:4:4 round trip.
#include <gtest/gtest.h>

#include "apps/jpeg/color.hpp"
#include "apps/jpeg/decoder.hpp"
#include "common/prng.hpp"

namespace cgra::jpeg {
namespace {

TEST(Color, YcbcrRoundTripNearlyLossless) {
  SplitMix64 rng(0xC0105);
  for (int i = 0; i < 500; ++i) {
    const auto r = static_cast<std::uint8_t>(rng.next_below(256));
    const auto g = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    std::uint8_t y;
    std::uint8_t cb;
    std::uint8_t cr;
    rgb_to_ycbcr(r, g, b, &y, &cb, &cr);
    std::uint8_t r2;
    std::uint8_t g2;
    std::uint8_t b2;
    ycbcr_to_rgb(y, cb, cr, &r2, &g2, &b2);
    EXPECT_NEAR(r, r2, 2);
    EXPECT_NEAR(g, g2, 2);
    EXPECT_NEAR(b, b2, 2);
  }
}

TEST(Color, GrayIsAchromatic) {
  std::uint8_t y;
  std::uint8_t cb;
  std::uint8_t cr;
  rgb_to_ycbcr(100, 100, 100, &y, &cb, &cr);
  EXPECT_EQ(y, 100);
  EXPECT_EQ(cb, 128);
  EXPECT_EQ(cr, 128);
}

TEST(Color, ChromaQuantCoarserThanLuma) {
  // The standard chrominance table quantises high frequencies harder.
  EXPECT_EQ(chrominance_quant()[0], 17);
  EXPECT_EQ(chrominance_quant()[63], 99);
  int chroma_ge = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    if (chrominance_quant()[i] >= luminance_quant()[i]) ++chroma_ge;
  }
  EXPECT_GT(chroma_ge, 50);
}

TEST(Color, ChromaHuffSpecsWellFormed) {
  for (const auto* spec : {&dc_chrominance_spec(), &ac_chrominance_spec()}) {
    int total = 0;
    for (const auto c : spec->counts) total += c;
    EXPECT_EQ(static_cast<std::size_t>(total), spec->symbols.size());
  }
  EXPECT_EQ(ac_chrominance_spec().symbols.size(), 162u);
}

TEST(Color, SplitMergePlanesRoundTrip) {
  const auto img = synthetic_rgb_image(16, 16, 9);
  Image y;
  Image cb;
  Image cr;
  split_planes(img, &y, &cb, &cr);
  const auto back = merge_planes(y, cb, cr);
  EXPECT_GT(psnr_rgb(img, back), 45.0);  // conversion rounding only
}

class ColorRoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ColorRoundTrip, EncodeDecodeRecoversImage) {
  const auto [w, h] = GetParam();
  const auto img = synthetic_rgb_image(w, h, 33);
  const auto bytes = encode_color_image(img, 80);
  const auto decoded = decode_image(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_TRUE(decoded.is_color);
  ASSERT_EQ(decoded.rgb.width, w);
  ASSERT_EQ(decoded.rgb.height, h);
  EXPECT_GT(psnr_rgb(img, decoded.rgb), 28.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ColorRoundTrip,
    ::testing::Values(std::make_pair(8, 8), std::make_pair(32, 24),
                      std::make_pair(64, 64), std::make_pair(20, 12)));

TEST(Color, GrayscaleStreamsStillDecode) {
  const auto img = synthetic_image(32, 32, 4);
  const auto decoded = decode_image(encode_image(img, 75));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.is_color);
  EXPECT_GT(psnr(img, decoded.image), 30.0);
}

TEST(Color, QualityControlsColorFidelity) {
  const auto img = synthetic_rgb_image(48, 48, 12);
  const auto lo = decode_image(encode_color_image(img, 15));
  const auto hi = decode_image(encode_color_image(img, 92));
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_LT(psnr_rgb(img, lo.rgb), psnr_rgb(img, hi.rgb));
}

TEST(Color, ColorStreamIsLargerThanGray) {
  const auto rgb = synthetic_rgb_image(64, 64, 5);
  Image y;
  Image cb;
  Image cr;
  split_planes(rgb, &y, &cb, &cr);
  const auto color_bytes = encode_color_image(rgb, 75);
  const auto gray_bytes = encode_image(y, 75);
  EXPECT_GT(color_bytes.size(), gray_bytes.size());
}

}  // namespace
}  // namespace cgra::jpeg

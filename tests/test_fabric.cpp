// Fabric-level tests: mesh stepping, synchronous remote-write commit,
// MIMD execution, run() termination.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"

namespace cgra::fabric {
namespace {

using interconnect::Direction;

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

TEST(Fabric, GeometryAndIndexing) {
  Fabric f(3, 4);
  EXPECT_EQ(f.rows(), 3);
  EXPECT_EQ(f.cols(), 4);
  EXPECT_EQ(f.tile_count(), 12);
}

TEST(Fabric, EmptyFabricIsHalted) {
  Fabric f(2, 2);
  EXPECT_TRUE(f.all_halted());
  const auto r = f.run(100);
  EXPECT_EQ(r.cycles, 0);
  EXPECT_TRUE(r.all_halted);
}

TEST(Fabric, RemoteWriteTravelsEast) {
  Fabric f(1, 2);
  f.links().set_output(0, Direction::kEast);
  f.tile(0).load_program(prog("  movi 0, #42\n  mov !7, 0\n  halt\n"));
  f.tile(0).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(7)), 42);
}

TEST(Fabric, RemoteWriteCommitsAtEndOfCycle) {
  // Writer and reader run in lockstep: the reader sampling dmem[0] in the
  // same cycle the writer sends must observe the OLD value.
  Fabric f(1, 2);
  f.links().set_output(0, Direction::kEast);
  // Writer: cycle 0 sends 5 into neighbour's dmem[0].
  f.tile(0).load_program(prog("  movi 1, #5\n  mov !0, 1\n  halt\n"));
  // Reader: copies its dmem[0] into dmem[1] every cycle for 3 cycles.
  f.tile(1).load_program(prog(
      "  mov 1, 0\n"   // cycle 0: old value
      "  mov 2, 0\n"   // cycle 1: may see write from writer's cycle 1
      "  mov 3, 0\n"
      "  halt\n"));
  f.tile(1).set_dmem(0, 99);
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(1)), 99);  // before the send retired
  EXPECT_EQ(to_signed(f.tile(1).dmem(3)), 5);   // after commit
}

TEST(Fabric, MimdTilesRunDifferentPrograms) {
  Fabric f(2, 1);
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(1).load_program(prog("  movi 0, #2\n  movi 1, #3\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 1);
  EXPECT_EQ(to_signed(f.tile(1).dmem(1)), 3);
  EXPECT_EQ(r.cycles, 3);  // bounded by the longest program
}

TEST(Fabric, RunStopsAtMaxCycles) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("spin:\n  jmp spin\n"));
  f.tile(0).restart();
  const auto r = f.run(50);
  EXPECT_EQ(r.cycles, 50);
  EXPECT_FALSE(r.all_halted);
}

TEST(Fabric, FaultsAreCollected) {
  Fabric f(1, 2);
  f.tile(0).load_program(prog("  mov !0, 0\n  halt\n"));  // no link -> fault
  f.tile(0).restart();
  const auto r = f.run(100);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].kind, FaultKind::kNoActiveLink);
  EXPECT_EQ(r.faults[0].tile, 0);
}

TEST(Fabric, CycleCounterMonotonicAcrossRuns) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  nop\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  const auto t1 = f.now();
  f.tile(0).restart();
  f.run(100);
  EXPECT_GT(f.now(), t1);
}

TEST(Fabric, PipelineOfThreeTiles) {
  // tile0 computes, sends to tile1; tile1 doubles, sends to tile2.
  Fabric f(1, 3);
  f.links().set_output(0, Direction::kEast);
  f.links().set_output(1, Direction::kEast);
  f.tile(0).load_program(prog("  movi 0, #21\n  mov !0, 0\n  halt\n"));
  f.tile(1).load_program(prog(
      "wait:\n  beqz 0, wait\n  add 1, 0, 0\n  mov !0, 1\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(1000);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(2).dmem(0)), 42);
}

TEST(Fabric, StalledTileResumesAutomatically) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  movi 0, #9\n  halt\n"));
  f.tile(0).restart();
  f.tile(0).stall_until(10);
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 9);
  EXPECT_EQ(r.cycles, 12);  // 10 stalled + 2 executing
}

// --- execution-engine behaviour ---------------------------------------------

/// Every fabric cycle lands in exactly one TileStats bucket, whatever mix
/// of running / stalled / halted / dead the tile went through.
void expect_stats_invariant(const Fabric& f) {
  for (int i = 0; i < f.tile_count(); ++i) {
    const auto& s = f.tile(i).stats();
    EXPECT_EQ(s.instructions + s.cycles_stalled + s.cycles_halted, f.now())
        << "tile " << i;
  }
}

TEST(Fabric, RemoteWriteSameDestinationHigherSourceIndexPersists) {
  // Tiles 0 and 2 both target tile 1's dmem[5] in the same cycle.  Commits
  // happen in ascending source-tile order, so tile 2's value lands last
  // and persists — the documented tie-break.
  Fabric f(1, 3);
  f.links().set_output(0, Direction::kEast);
  f.links().set_output(2, Direction::kWest);
  f.tile(0).load_program(prog("  movi 0, #111\n  mov !5, 0\n  halt\n"));
  f.tile(2).load_program(prog("  movi 0, #222\n  mov !5, 0\n  halt\n"));
  f.tile(0).restart();
  f.tile(2).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(5)), 222);
}

TEST(Fabric, FastForwardAccountsSkippedCyclesExactly) {
  // Two tiles parked on different stall deadlines: the engine fast-forwards
  // over the all-stalled gaps, but the result cycles, the global clock and
  // the per-tile stats must match a cycle-by-cycle reference walk.
  Fabric f(1, 2);
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(1).load_program(prog("  movi 0, #2\n  nop\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  f.tile(0).stall_until(100);
  f.tile(1).stall_until(200);
  const auto r = f.run(1'000);
  EXPECT_TRUE(r.ok());
  // Tile 1 wakes at 200 and runs 3 cycles: the run ends at cycle 203.
  EXPECT_EQ(r.cycles, 203);
  EXPECT_EQ(f.now(), 203);
  expect_stats_invariant(f);
  EXPECT_EQ(f.tile(0).stats().cycles_stalled, 100);
  EXPECT_EQ(f.tile(0).stats().instructions, 2);
  EXPECT_EQ(f.tile(0).stats().cycles_halted, 101);  // cycles 102..202
  EXPECT_EQ(f.tile(1).stats().cycles_stalled, 200);
  EXPECT_EQ(f.tile(1).stats().instructions, 3);
}

TEST(Fabric, FastForwardStopsAtMaxCyclesMidStall) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(0).restart();
  f.tile(0).stall_until(1'000'000);
  const auto r = f.run(500);
  EXPECT_FALSE(r.all_halted);
  EXPECT_EQ(r.cycles, 500);
  EXPECT_EQ(f.now(), 500);
  expect_stats_invariant(f);
  EXPECT_EQ(f.tile(0).stats().cycles_stalled, 500);
}

TEST(Fabric, StatsInvariantAcrossKillRestartAndSteps) {
  Fabric f(2, 2);
  for (int i = 0; i < 4; ++i) {
    f.tile(i).load_program(prog("spin:\n  jmp spin\n"));
    f.tile(i).restart();
  }
  f.run(10);
  f.kill_tile(2);                        // external fault path
  EXPECT_FALSE(f.all_halted());
  f.run(5);
  f.tile(0).stall_until(f.now() + 7);    // external stall path
  for (int i = 0; i < 3; ++i) f.step();  // single-cycle public stepping
  f.tile(1).restart();                   // restart a running tile
  f.run(4);
  EXPECT_EQ(f.now(), 22);
  expect_stats_invariant(f);
  EXPECT_EQ(f.dead_tiles(), std::vector<int>{2});
}

TEST(Fabric, AllHaltedCounterMatchesTileScan) {
  Fabric f(2, 2);
  EXPECT_TRUE(f.all_halted());
  f.tile(0).load_program(prog("  nop\n  halt\n"));
  f.tile(0).restart();
  EXPECT_FALSE(f.all_halted());
  f.tile(3).load_program(prog("spin:\n  jmp spin\n"));
  f.tile(3).restart();
  f.run(10);  // tile 0 halts, tile 3 spins
  EXPECT_FALSE(f.all_halted());
  f.kill_tile(3);
  EXPECT_TRUE(f.all_halted());
  for (int i = 0; i < f.tile_count(); ++i) EXPECT_TRUE(f.tile(i).halted());
}

TEST(Fabric, MovedFabricKeepsScheduling) {
  Fabric f(1, 2);
  f.tile(0).load_program(prog("  movi 0, #7\n  halt\n"));
  Fabric g = std::move(f);
  g.tile(0).restart();  // notification must reach the moved-to fabric
  EXPECT_FALSE(g.all_halted());
  const auto r = g.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(g.tile(0).dmem(0)), 7);
  expect_stats_invariant(g);
}

TEST(Fabric, NextWakeCycleTracksEarliestDeadline) {
  Fabric f(1, 2);
  f.tile(0).load_program(prog("  halt\n"));
  f.tile(1).load_program(prog("  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  EXPECT_EQ(f.next_wake_cycle(), -1);
  f.tile(0).stall_until(50);
  f.tile(1).stall_until(20);
  EXPECT_EQ(f.next_wake_cycle(), 20);
  f.tile(1).stall_until(80);  // superseded deadline must not resurface
  EXPECT_EQ(f.next_wake_cycle(), 50);
}

// --- Fabric::reset(): the fabric-pool reuse contract ---------------------

// A workload that exercises every class of state reset() must clear:
// programs, data, links, stalls, a dead tile and a failed link driver.
void dirty(Fabric& f) {
  f.links().set_output(0, Direction::kEast);
  f.tile(0).load_program(
      prog("  movi 0, #13\n  mov !5, 0\n  halt\n"));
  f.tile(1).load_program(prog("  movi 7, #-4\n  halt\n"));
  for (int t = 0; t < f.tile_count(); ++t) f.tile(t).set_dmem(100, 77);
  f.tile(0).restart();
  f.tile(1).restart();
  (void)f.run(1000);
  if (f.tile_count() > 2) f.kill_tile(2);
  f.fail_link(1);
  f.tile(1).stall_until(f.now() + 500);
}

TEST(Fabric, ResetRestoresConstructionState) {
  Fabric f(2, 2);
  dirty(f);
  ASSERT_NE(f.now(), 0);
  ASSERT_FALSE(f.dead_tiles().empty());

  f.reset();

  EXPECT_EQ(f.now(), 0);
  EXPECT_TRUE(f.all_halted());
  EXPECT_TRUE(f.dead_tiles().empty());
  EXPECT_EQ(f.next_wake_cycle(), -1);
  for (int t = 0; t < f.tile_count(); ++t) {
    EXPECT_FALSE(f.link_failed(t)) << t;
    EXPECT_FALSE(f.links().output(t).has_value()) << t;
    EXPECT_EQ(f.tile(t).stats().instructions, 0) << t;
    EXPECT_EQ(f.tile(t).stats().cycles_halted, 0) << t;
    for (int a = 0; a < kDataMemWords; ++a) {
      ASSERT_EQ(f.tile(t).dmem(a), 0u) << "tile " << t << " dmem " << a;
    }
  }
  // An empty reset fabric runs zero cycles, like a fresh one.
  const auto r = f.run(100);
  EXPECT_EQ(r.cycles, 0);
  expect_stats_invariant(f);
}

// Property: for a set of structurally different workloads, running W on a
// reset fabric is cycle-for-cycle and bit-for-bit identical to running W
// on a fresh fabric — whatever ran before the reset.
TEST(Fabric, ResetReusedRunMatchesFreshCycleForCycle) {
  const auto run_workload = [](Fabric& f, int variant) {
    f.links().set_output(0, Direction::kEast);
    if (f.cols() >= 2) f.links().set_output(1, Direction::kSouth);
    f.tile(0).load_program(prog(
        "  movi 1, #" + std::to_string(3 + variant) +
        "\n  movi 2, #0\n"
        "loop:\n"
        "  add 2, 2, 1\n  sub 1, 1, #1\n  bnez 1, loop\n"
        "  mov !9, 2\n  halt\n"));
    f.tile(1).load_program(prog("  mov 3, 9\n  add 3, 3, #1\n  halt\n"));
    f.tile(0).restart();
    f.tile(1).restart();
    return f.run(10'000);
  };

  for (int variant = 0; variant < 4; ++variant) {
    // Fresh reference.
    Fabric fresh(2, 2);
    const auto want = run_workload(fresh, variant);

    // Reused: a different workload ran first, then reset().
    Fabric reused(2, 2);
    dirty(reused);
    reused.reset();
    const auto got = run_workload(reused, variant);

    EXPECT_EQ(got.cycles, want.cycles) << variant;
    EXPECT_EQ(got.all_halted, want.all_halted) << variant;
    EXPECT_EQ(got.faults.size(), want.faults.size()) << variant;
    for (int t = 0; t < fresh.tile_count(); ++t) {
      EXPECT_EQ(reused.tile(t).stats().instructions,
                fresh.tile(t).stats().instructions)
          << variant << " tile " << t;
      EXPECT_EQ(reused.tile(t).stats().cycles_stalled,
                fresh.tile(t).stats().cycles_stalled)
          << variant << " tile " << t;
      for (int a = 0; a < kDataMemWords; ++a) {
        ASSERT_EQ(reused.tile(t).dmem(a), fresh.tile(t).dmem(a))
            << variant << " tile " << t << " dmem " << a;
      }
    }
    expect_stats_invariant(reused);
  }
}

TEST(Fabric, ResetRevivesDeadTileForReuse) {
  Fabric f(1, 2);
  f.kill_tile(1);
  ASSERT_EQ(f.dead_tiles(), std::vector<int>{1});
  f.reset();
  ASSERT_TRUE(f.dead_tiles().empty());
  // The revived tile executes again.
  f.tile(1).load_program(prog("  movi 0, #6\n  halt\n"));
  f.tile(1).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(0)), 6);
}

}  // namespace
}  // namespace cgra::fabric

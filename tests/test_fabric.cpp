// Fabric-level tests: mesh stepping, synchronous remote-write commit,
// MIMD execution, run() termination.
#include <gtest/gtest.h>

#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"

namespace cgra::fabric {
namespace {

using interconnect::Direction;

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

TEST(Fabric, GeometryAndIndexing) {
  Fabric f(3, 4);
  EXPECT_EQ(f.rows(), 3);
  EXPECT_EQ(f.cols(), 4);
  EXPECT_EQ(f.tile_count(), 12);
}

TEST(Fabric, EmptyFabricIsHalted) {
  Fabric f(2, 2);
  EXPECT_TRUE(f.all_halted());
  const auto r = f.run(100);
  EXPECT_EQ(r.cycles, 0);
  EXPECT_TRUE(r.all_halted);
}

TEST(Fabric, RemoteWriteTravelsEast) {
  Fabric f(1, 2);
  f.links().set_output(0, Direction::kEast);
  f.tile(0).load_program(prog("  movi 0, #42\n  mov !7, 0\n  halt\n"));
  f.tile(0).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(7)), 42);
}

TEST(Fabric, RemoteWriteCommitsAtEndOfCycle) {
  // Writer and reader run in lockstep: the reader sampling dmem[0] in the
  // same cycle the writer sends must observe the OLD value.
  Fabric f(1, 2);
  f.links().set_output(0, Direction::kEast);
  // Writer: cycle 0 sends 5 into neighbour's dmem[0].
  f.tile(0).load_program(prog("  movi 1, #5\n  mov !0, 1\n  halt\n"));
  // Reader: copies its dmem[0] into dmem[1] every cycle for 3 cycles.
  f.tile(1).load_program(prog(
      "  mov 1, 0\n"   // cycle 0: old value
      "  mov 2, 0\n"   // cycle 1: may see write from writer's cycle 1
      "  mov 3, 0\n"
      "  halt\n"));
  f.tile(1).set_dmem(0, 99);
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(1).dmem(1)), 99);  // before the send retired
  EXPECT_EQ(to_signed(f.tile(1).dmem(3)), 5);   // after commit
}

TEST(Fabric, MimdTilesRunDifferentPrograms) {
  Fabric f(2, 1);
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(1).load_program(prog("  movi 0, #2\n  movi 1, #3\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 1);
  EXPECT_EQ(to_signed(f.tile(1).dmem(1)), 3);
  EXPECT_EQ(r.cycles, 3);  // bounded by the longest program
}

TEST(Fabric, RunStopsAtMaxCycles) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("spin:\n  jmp spin\n"));
  f.tile(0).restart();
  const auto r = f.run(50);
  EXPECT_EQ(r.cycles, 50);
  EXPECT_FALSE(r.all_halted);
}

TEST(Fabric, FaultsAreCollected) {
  Fabric f(1, 2);
  f.tile(0).load_program(prog("  mov !0, 0\n  halt\n"));  // no link -> fault
  f.tile(0).restart();
  const auto r = f.run(100);
  ASSERT_EQ(r.faults.size(), 1u);
  EXPECT_EQ(r.faults[0].kind, FaultKind::kNoActiveLink);
  EXPECT_EQ(r.faults[0].tile, 0);
}

TEST(Fabric, CycleCounterMonotonicAcrossRuns) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  nop\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  const auto t1 = f.now();
  f.tile(0).restart();
  f.run(100);
  EXPECT_GT(f.now(), t1);
}

TEST(Fabric, PipelineOfThreeTiles) {
  // tile0 computes, sends to tile1; tile1 doubles, sends to tile2.
  Fabric f(1, 3);
  f.links().set_output(0, Direction::kEast);
  f.links().set_output(1, Direction::kEast);
  f.tile(0).load_program(prog("  movi 0, #21\n  mov !0, 0\n  halt\n"));
  f.tile(1).load_program(prog(
      "wait:\n  beqz 0, wait\n  add 1, 0, 0\n  mov !0, 1\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  const auto r = f.run(1000);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(2).dmem(0)), 42);
}

TEST(Fabric, StalledTileResumesAutomatically) {
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  movi 0, #9\n  halt\n"));
  f.tile(0).restart();
  f.tile(0).stall_until(10);
  const auto r = f.run(100);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 9);
  EXPECT_EQ(r.cycles, 12);  // 10 stalled + 2 executing
}

}  // namespace
}  // namespace cgra::fabric

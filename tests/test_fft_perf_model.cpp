// Tests of the tau-equation performance model driving Figures 10-12.
#include <gtest/gtest.h>

#include "dse/fft_perf_model.hpp"

namespace cgra::dse {
namespace {

using fft::make_geometry;

/// Synthetic process times close to Table 1 (ns): lets the model tests run
/// without the (slower) simulator measurement.
FftProcessTimes table1_like_times() {
  FftProcessTimes t;
  t.bf = {2672, 2672, 2672, 4112, 3434, 3134, 3062, 3182, 3554, 4364};
  t.vcp = 789;
  t.hcp = 1557;
  return t;
}

TEST(FftModel, UsableColumnsAreDivisors) {
  const auto g = make_geometry(1024);
  EXPECT_EQ(usable_column_counts(g), (std::vector<int>{1, 2, 5, 10}));
}

TEST(FftModel, MoreColumnsWinAtZeroLinkCost) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  double prev = 0.0;
  for (const int cols : {1, 2, 5, 10}) {
    const auto cost = evaluate_fft_design(g, times, cols, 0.0);
    EXPECT_GT(cost.throughput_per_sec(), prev) << cols;
    prev = cost.throughput_per_sec();
  }
}

TEST(FftModel, ThroughputFallsWithLinkCost) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  for (const int cols : {1, 2, 5, 10}) {
    double prev = 1e18;
    for (double link = 0.0; link <= 5000.0; link += 500.0) {
      const auto cost = evaluate_fft_design(g, times, cols, link);
      EXPECT_LE(cost.throughput_per_sec(), prev + 1e-9) << cols << "@" << link;
      prev = cost.throughput_per_sec();
    }
  }
}

TEST(FftModel, WiderDesignsAreMoreSensitiveToLinkCost) {
  // Fig. 11's key claim: "circuits with more columns are more sensitive to
  // link reconfiguration cost" — compare the total-time slope in L.
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  auto slope = [&](int cols) {
    const auto a = evaluate_fft_design(g, times, cols, 0.0);
    const auto b = evaluate_fft_design(g, times, cols, 2000.0);
    return (b.total_ns() - a.total_ns()) / 2000.0;
  };
  EXPECT_GT(slope(10), slope(5));
  EXPECT_GT(slope(5), slope(2));
  EXPECT_GE(slope(2), slope(1));
}

TEST(FftModel, CrossoverExists) {
  // For small L the 10-column design beats 1 column; for large L the
  // ordering flips (Fig. 10/12's "opposite effect" beyond ~1100 ns).
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  const auto t10_cheap = evaluate_fft_design(g, times, 10, 0.0);
  const auto t1_cheap = evaluate_fft_design(g, times, 1, 0.0);
  EXPECT_GT(t10_cheap.throughput_per_sec(), t1_cheap.throughput_per_sec());
  const auto t10_dear = evaluate_fft_design(g, times, 10, 5000.0);
  const auto t1_dear = evaluate_fft_design(g, times, 1, 5000.0);
  EXPECT_LT(t10_dear.throughput_per_sec(), t1_dear.throughput_per_sec());
}

TEST(FftModel, FullySpatialDesignPaysNoTwiddleReload) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  const auto cost = evaluate_fft_design(g, times, 10, 0.0);
  EXPECT_DOUBLE_EQ(cost.tau[1], 0.0);
}

TEST(FftModel, NaiveTwiddleOptionCostsMore) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  FftModelOptions naive;
  naive.twiddles = TwiddleCosting::kNaive;
  FftModelOptions opt;
  const auto a = evaluate_fft_design(g, times, 2, 0.0, naive);
  const auto b = evaluate_fft_design(g, times, 2, 0.0, opt);
  EXPECT_GT(a.tau[1], b.tau[1]);
  // Naive reload: N/2 * log2 N words * 33.33 ns.
  EXPECT_NEAR(a.tau[1], 512 * 10 * 33.3333, 1.0);
}

TEST(FftModel, OptimizedCopyVarsZeroTau3) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  FftModelOptions opt;
  opt.optimized_copy_vars = true;
  const auto cost = evaluate_fft_design(g, times, 1, 0.0, opt);
  EXPECT_DOUBLE_EQ(cost.tau[3], 0.0);
  const auto base = evaluate_fft_design(g, times, 1, 0.0);
  EXPECT_GT(base.tau[3], 0.0);
}

TEST(FftModel, Tau6IsZeroPerEq13) {
  const auto g = make_geometry(1024);
  const auto cost = evaluate_fft_design(g, table1_like_times(), 5, 100.0);
  EXPECT_DOUBLE_EQ(cost.tau[6], 0.0);
}

TEST(FftModel, HorizontalLinkTermScalesWithColumns) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  const double link = 100.0;
  const auto c2 = evaluate_fft_design(g, times, 2, link);
  const auto c10 = evaluate_fft_design(g, times, 10, link);
  EXPECT_NEAR(c10.tau[5] / c2.tau[5], 5.0, 1e-9);
  EXPECT_NEAR(c2.tau[5], 2 * 8 * link, 1e-6);  // cols * rows * L
}

TEST(FftModel, RejectsBadArguments) {
  const auto g = make_geometry(1024);
  const auto times = table1_like_times();
  EXPECT_THROW(evaluate_fft_design(g, times, 3, 0.0), std::invalid_argument);
  FftProcessTimes wrong = times;
  wrong.bf.pop_back();
  EXPECT_THROW(evaluate_fft_design(g, wrong, 2, 0.0), std::invalid_argument);
}

TEST(FftModel, MeasuredTimesDriveModel) {
  // Full path: measure kernels on the simulator for a small geometry and
  // feed the model.  (64-point keeps the measurement fast.)
  const auto g = make_geometry(64, 8);
  const auto times = measure_process_times(g);
  ASSERT_EQ(times.bf.size(), 6u);
  for (const auto t : times.bf) EXPECT_GT(t, 0.0);
  EXPECT_GT(times.hcp, times.vcp);
  const auto cost = evaluate_fft_design(g, times, 6, 100.0);
  EXPECT_GT(cost.throughput_per_sec(), 0.0);
}

}  // namespace
}  // namespace cgra::dse

// Encoder/decoder round-trip and per-stage tests.
#include <gtest/gtest.h>

#include "apps/jpeg/decoder.hpp"
#include "apps/jpeg/encoder.hpp"

namespace cgra::jpeg {
namespace {

TEST(JpegStages, LevelShiftCenters) {
  IntBlock b{};
  b.fill(128);
  const auto s = level_shift(b);
  for (const int v : s) EXPECT_EQ(v, 0);
}

TEST(JpegStages, QuantReciprocalAccuracy) {
  for (int q = 1; q <= 255; ++q) {
    // Reciprocal quantisation of q*k must give k for reasonable k.
    for (int k : {-30, -7, -1, 0, 1, 5, 29}) {
      IntBlock c{};
      std::array<int, 64> quant{};
      quant.fill(q);
      c[0] = q * k;
      const auto out = quantize(c, quant);
      EXPECT_EQ(out[0], k) << "q=" << q << " k=" << k;
    }
  }
}

TEST(JpegStages, ZigzagScanUsesOrder) {
  IntBlock b{};
  for (int i = 0; i < 64; ++i) b[static_cast<std::size_t>(i)] = i;
  const auto z = zigzag_scan(b);
  EXPECT_EQ(z[0], 0);
  EXPECT_EQ(z[1], 1);
  EXPECT_EQ(z[2], 8);
  EXPECT_EQ(z[3], 16);
}

TEST(JpegStages, BitCategory) {
  EXPECT_EQ(bit_category(0), 0);
  EXPECT_EQ(bit_category(1), 1);
  EXPECT_EQ(bit_category(-1), 1);
  EXPECT_EQ(bit_category(2), 2);
  EXPECT_EQ(bit_category(-3), 2);
  EXPECT_EQ(bit_category(255), 8);
  EXPECT_EQ(bit_category(-1024), 11);
}

TEST(JpegStages, AmplitudeExtendRoundTrip) {
  for (int v : {-1000, -255, -5, -1, 1, 3, 127, 900}) {
    const int cat = bit_category(v);
    const std::uint32_t bits =
        v >= 0 ? static_cast<std::uint32_t>(v)
               : static_cast<std::uint32_t>(v + (1 << cat) - 1);
    EXPECT_EQ(extend_amplitude(static_cast<int>(bits), cat), v) << v;
  }
}

TEST(BitIo, WriterReaderRoundTrip) {
  BitWriter bw;
  bw.put(0b101, 3);
  bw.put(0xFF, 8);  // forces stuffing
  bw.put(0b0, 1);
  bw.put(0x1234, 16);
  const auto bytes = bw.finish();
  BitReader br(bytes.data(), bytes.size());
  EXPECT_EQ(br.get(3), 0b101);
  EXPECT_EQ(br.get(8), 0xFF);
  EXPECT_EQ(br.get(1), 0);
  EXPECT_EQ(br.get(16), 0x1234);
}

TEST(BitIo, StuffingInsertsZeroByte) {
  BitWriter bw;
  bw.put(0xFF, 8);
  const auto bytes = bw.finish();
  ASSERT_GE(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0x00);
}

TEST(BitIo, ReaderStopsAtEnd) {
  const std::uint8_t one = 0xA0;
  BitReader br(&one, 1);
  EXPECT_EQ(br.get(8), 0xA0);
  EXPECT_EQ(br.get_bit(), -1);
}

TEST(HuffmanBlock, DcOnlyBlockEncodesCompactly) {
  BitWriter bw;
  IntBlock zz{};
  zz[0] = 10;
  const auto dc = build_encoder(dc_luminance_spec());
  const auto ac = build_encoder(ac_luminance_spec());
  const int pred = huffman_encode_block(zz, 0, bw, dc, ac);
  EXPECT_EQ(pred, 10);
  // category-4 code (3 bits) + 4 amplitude + EOB (4 bits) = 11 bits.
  EXPECT_LE(bw.bit_count(), 16u);
}

TEST(JpegCodec, StreamHasJfifStructure) {
  const auto img = synthetic_image(32, 24, 1);
  const auto bytes = encode_image(img);
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xD8);  // SOI
  EXPECT_EQ(bytes[bytes.size() - 2], 0xFF);
  EXPECT_EQ(bytes.back(), 0xD9);  // EOI
}

class RoundTrip : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RoundTrip, DecodeRecoversImage) {
  const auto [w, h] = GetParam();
  const auto img = synthetic_image(w, h, 42);
  const auto bytes = encode_image(img, 75);
  const auto decoded = decode_image(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_EQ(decoded.image.width, w);
  ASSERT_EQ(decoded.image.height, h);
  EXPECT_GT(psnr(img, decoded.image), 30.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RoundTrip,
    ::testing::Values(std::make_pair(8, 8), std::make_pair(16, 16),
                      std::make_pair(64, 48), std::make_pair(200, 200),
                      std::make_pair(20, 12) /* non multiple of 8 */));

TEST(JpegCodec, QualityTradesSizeForPsnr) {
  const auto img = synthetic_image(64, 64, 7);
  const auto lo = encode_image(img, 20);
  const auto hi = encode_image(img, 90);
  EXPECT_LT(lo.size(), hi.size());
  const auto dlo = decode_image(lo);
  const auto dhi = decode_image(hi);
  ASSERT_TRUE(dlo.ok());
  ASSERT_TRUE(dhi.ok());
  EXPECT_LT(psnr(img, dlo.image), psnr(img, dhi.image));
}

TEST(JpegCodec, DecoderRejectsGarbage) {
  EXPECT_FALSE(decode_image({0x00, 0x01, 0x02}).ok());
  EXPECT_FALSE(decode_image({0xFF, 0xD8}).ok());  // SOI then nothing
}

TEST(JpegCodec, FlatImageCompressesHard) {
  Image img;
  img.width = 64;
  img.height = 64;
  img.pixels.assign(64 * 64, 128);
  const auto bytes = encode_image(img);
  EXPECT_LT(bytes.size(), 1200u);  // headers dominate
  const auto decoded = decode_image(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_GT(psnr(img, decoded.image), 45.0);
}

}  // namespace
}  // namespace cgra::jpeg

// Process network construction and validation tests.
#include <gtest/gtest.h>

#include "procnet/network.hpp"

namespace cgra::procnet {
namespace {

Process make(const std::string& name, std::int64_t runtime) {
  Process p;
  p.name = name;
  p.runtime_cycles = runtime;
  return p;
}

TEST(ProcNet, PipelineBuildsEdges) {
  auto net = ProcessNetwork::pipeline(
      {make("a", 10), make("b", 20), make("c", 30)}, 64);
  EXPECT_EQ(net.size(), 3);
  ASSERT_EQ(net.edges().size(), 2u);
  EXPECT_EQ(net.edges()[0].from, 0);
  EXPECT_EQ(net.edges()[0].to, 1);
  EXPECT_EQ(net.edges()[0].words, 64);
  EXPECT_TRUE(net.validate().ok());
}

TEST(ProcNet, FindByName) {
  auto net = ProcessNetwork::pipeline({make("x", 1), make("y", 2)}, 8);
  EXPECT_EQ(net.find("y"), 1);
  EXPECT_EQ(net.find("zzz"), -1);
}

TEST(ProcNet, TotalWorkHonoursInvocations) {
  Process p = make("dct", 100);
  p.invocations_per_item = 4;
  ProcessNetwork net;
  net.add_process(p);
  net.add_process(make("q", 50));
  EXPECT_EQ(net.total_work_cycles(), 450);
}

TEST(ProcNet, RejectsBadEdges) {
  ProcessNetwork net;
  net.add_process(make("a", 1));
  EXPECT_FALSE(net.add_edge(0, 0, 4));   // self loop
  EXPECT_FALSE(net.add_edge(0, 5, 4));   // unknown id
  EXPECT_FALSE(net.add_edge(-1, 0, 4));  // negative id
}

TEST(ProcNet, ValidateCatchesEmptyNetwork) {
  ProcessNetwork net;
  EXPECT_FALSE(net.validate().ok());
}

TEST(ProcNet, ValidateCatchesNegativeAnnotations) {
  ProcessNetwork net;
  Process p = make("bad", -5);
  net.add_process(p);
  EXPECT_FALSE(net.validate().ok());
}

TEST(ProcNet, ValidateCatchesZeroInvocations) {
  ProcessNetwork net;
  Process p = make("bad", 5);
  p.invocations_per_item = 0;
  net.add_process(p);
  EXPECT_FALSE(net.validate().ok());
}

TEST(ProcNet, DataWordsSumsAnnotations) {
  Process p;
  p.data1 = 64;
  p.data2 = 14;
  p.data3 = 13;
  EXPECT_EQ(p.data_words(), 91);
}

}  // namespace
}  // namespace cgra::procnet

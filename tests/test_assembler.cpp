// Assembler tests: syntax, labels, directives, diagnostics, round-trip.
#include <gtest/gtest.h>

#include "common/fixed_complex.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"

namespace cgra::isa {
namespace {

TEST(Assembler, MinimalProgram) {
  const auto r = assemble("  movi 0, #42\n  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  ASSERT_EQ(r.program.code.size(), 2u);
  EXPECT_EQ(r.program.code[0].opcode, Opcode::kMovi);
  EXPECT_EQ(r.program.code[0].imm, 42);
  EXPECT_EQ(r.program.code[1].opcode, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto r = assemble(
      "; leading comment\n"
      "\n"
      "  nop ; trailing comment\n"
      "  halt\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.code.size(), 2u);
}

TEST(Assembler, LabelsResolveForwardAndBack) {
  const auto r = assemble(
      "start:\n"
      "  beqz 0, done\n"
      "  jmp start\n"
      "done:\n"
      "  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  EXPECT_EQ(r.program.code[0].imm, 2);  // done
  EXPECT_EQ(r.program.code[1].imm, 0);  // start
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const auto r = assemble("loop: sub 1, 1, #1\n  bnez 1, loop\n  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  EXPECT_EQ(r.program.labels.at("loop"), 0);
  EXPECT_EQ(r.program.code[1].imm, 0);
}

TEST(Assembler, EquSymbolsAndArithmetic) {
  const auto r = assemble(
      ".equ BASE, 0x40\n"
      ".equ OFF, 4\n"
      "  mov BASE+OFF, BASE-2\n"
      "  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  EXPECT_EQ(r.program.code[0].dst, 0x44);
  EXPECT_EQ(r.program.code[0].srca, 0x3E);
}

TEST(Assembler, DataDirective) {
  const auto r = assemble(".data 10, 1, 2, -3\n  halt\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.data.size(), 3u);
  EXPECT_EQ(r.program.data[0].addr, 10);
  EXPECT_EQ(to_signed(r.program.data[2].value), -3);
}

TEST(Assembler, CdataPacksComplex) {
  const auto r = assemble(".cdata 5, 0.5, -0.25\n  halt\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.data.size(), 1u);
  const auto c = unpack_complex(r.program.data[0].value);
  EXPECT_NEAR(half_to_double(c.re), 0.5, 1e-5);
  EXPECT_NEAR(half_to_double(c.im), -0.25, 1e-5);
}

TEST(Assembler, OperandFlags) {
  const auto r = assemble("  cmul !1*, 2*, 3*\n  add 4, 5, #-6\n  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  const auto& c = r.program.code[0];
  EXPECT_TRUE(c.has_flag(kFlagDstRemote));
  EXPECT_TRUE(c.has_flag(kFlagDstIndirect));
  EXPECT_TRUE(c.has_flag(kFlagSrcAIndirect));
  EXPECT_TRUE(c.has_flag(kFlagSrcBIndirect));
  const auto& a = r.program.code[1];
  EXPECT_TRUE(a.has_flag(kFlagUseImm));
  EXPECT_EQ(a.imm, -6);
}

TEST(Assembler, ErrorUnknownMnemonic) {
  const auto r = assemble("  frobnicate 1, 2\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.front().find("unknown mnemonic"), std::string::npos);
}

TEST(Assembler, ErrorUndefinedSymbol) {
  const auto r = assemble("  mov 1, NOPE\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.front().find("undefined symbol"), std::string::npos);
}

TEST(Assembler, ErrorWrongOperandCount) {
  const auto r = assemble("  add 1, 2\n");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, ErrorDuplicateLabel) {
  const auto r = assemble("x:\n  nop\nx:\n  halt\n");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.errors.front().find("duplicate label"), std::string::npos);
}

TEST(Assembler, ErrorImmediateOutOfRange) {
  const auto r = assemble("  movi 0, #9000000\n");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, ErrorMoviRequiresImmediate) {
  const auto r = assemble("  movi 0, 5\n");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, ErrorRemoteSource) {
  const auto r = assemble("  mov 1, !2\n");
  EXPECT_FALSE(r.ok());
}

TEST(Assembler, MultipleErrorsAllReported) {
  const auto r = assemble("  bogus 1\n  mov 1, NOPE\n");
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.errors.size(), 2u);
}

TEST(Assembler, DisassembleReassembleFixpoint) {
  const std::string src =
      "  movi 5, #100\n"
      "loop:\n"
      "  cadd 10, 5*, 6\n"
      "  cmul !7, 8, 9*\n"
      "  sub 5, 5, #1\n"
      "  bnez 5, loop\n"
      "  halt\n";
  const auto first = assemble(src);
  ASSERT_TRUE(first.ok()) << first.status.message();
  const auto second = assemble(disassemble(first.program));
  ASSERT_TRUE(second.ok()) << second.status.message();
  ASSERT_EQ(first.program.code.size(), second.program.code.size());
  for (std::size_t i = 0; i < first.program.code.size(); ++i) {
    EXPECT_EQ(first.program.code[i], second.program.code[i]) << i;
  }
}

TEST(Assembler, MacOperandShapes) {
  const auto r = assemble(
      "  macz 1, 2\n  mac 3*, #7\n  macr 4\n  halt\n");
  ASSERT_TRUE(r.ok()) << r.status.message();
  EXPECT_EQ(r.program.code[0].opcode, Opcode::kMacz);
  EXPECT_EQ(r.program.code[0].srca, 1);
  EXPECT_EQ(r.program.code[0].srcb, 2);
  EXPECT_TRUE(r.program.code[1].has_flag(kFlagSrcAIndirect));
  EXPECT_TRUE(r.program.code[1].has_flag(kFlagUseImm));
  EXPECT_EQ(r.program.code[2].dst, 4);
  // Wrong shapes rejected.
  EXPECT_FALSE(assemble("  macz 1\n").ok());
  EXPECT_FALSE(assemble("  macr 1, 2\n").ok());
}

TEST(Assembler, FootprintCounters) {
  const auto r = assemble(".data 0, 1, 2\n  nop\n  halt\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.inst_words(), 2);
  EXPECT_EQ(r.program.data_words(), 2);
}

}  // namespace
}  // namespace cgra::isa

// Randomised robustness tests: seeded "fuzzing" of the decoders, codecs
// and algorithms.  Nothing here may crash; errors must surface as Status /
// ok-flags, and round-trip properties must hold for arbitrary valid input.
#include <gtest/gtest.h>

#include "apps/jpeg/decoder.hpp"
#include "apps/jpeg/encoder.hpp"
#include "common/prng.hpp"
#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "mapping/rebalance.hpp"

namespace cgra {
namespace {

// ---- random instruction round-trips through the full text pipeline ----

class IsaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaFuzz, RandomInstructionsSurviveDisassembleReassemble) {
  SplitMix64 rng(GetParam());
  isa::Program prog;
  for (int i = 0; i < 200; ++i) {
    isa::Instruction in;
    in.opcode = static_cast<isa::Opcode>(
        rng.next_below(static_cast<std::uint64_t>(isa::Opcode::kOpcodeCount)));
    // Generate flag combinations the assembler syntax can express.
    if (isa::writes_dst(in.opcode)) {
      in.dst = static_cast<std::uint16_t>(rng.next_below(512));
      if (rng.next_below(2) != 0) in.flags |= isa::kFlagDstIndirect;
      if (rng.next_below(4) == 0) in.flags |= isa::kFlagDstRemote;
    }
    if (isa::reads_srca(in.opcode)) {
      in.srca = static_cast<std::uint16_t>(rng.next_below(512));
      if (rng.next_below(2) != 0) in.flags |= isa::kFlagSrcAIndirect;
    }
    if (in.opcode == isa::Opcode::kMovi) {
      in.flags |= isa::kFlagUseImm;
      in.imm = static_cast<std::int32_t>(rng.next_below(1 << 20)) - (1 << 19);
    } else if (isa::reads_srcb(in.opcode)) {
      if (rng.next_below(2) != 0) {
        in.flags |= isa::kFlagUseImm;
        in.imm = static_cast<std::int32_t>(rng.next_below(1 << 20)) - (1 << 19);
      } else {
        in.srcb = static_cast<std::uint16_t>(rng.next_below(512));
        if (rng.next_below(2) != 0) in.flags |= isa::kFlagSrcBIndirect;
      }
    } else if (isa::is_branch(in.opcode)) {
      in.imm = static_cast<std::int32_t>(rng.next_below(200));
    }
    prog.code.push_back(in);
  }
  const auto round = isa::assemble(isa::disassemble(prog));
  ASSERT_TRUE(round.ok()) << round.status.message();
  ASSERT_EQ(round.program.code.size(), prog.code.size());
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    EXPECT_EQ(round.program.code[i], prog.code[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaFuzz,
                         ::testing::Values(1u, 7u, 99u, 1234u));

TEST(IsaFuzz, GarbageSourceNeverCrashes) {
  SplitMix64 rng(0xDEAD);
  for (int round = 0; round < 50; ++round) {
    std::string junk;
    const std::size_t len = rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(' ' + rng.next_below(94)));
    }
    const auto result = isa::assemble(junk);  // must not crash or hang
    (void)result.ok();
  }
}

// ---- decoder corruption: flip bytes of a valid stream ----

class JpegCorruption : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JpegCorruption, CorruptedStreamsFailGracefully) {
  const auto img = jpeg::synthetic_image(32, 32, 5);
  auto bytes = jpeg::encode_image(img, 50);
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    auto corrupted = bytes;
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = rng.next_below(corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    const auto result = jpeg::decode_image(corrupted);  // no crash, no hang
    if (result.ok()) {
      // A flip in the entropy data may still decode; the image must at
      // least have the declared geometry.
      EXPECT_EQ(result.image.pixels.size(),
                static_cast<std::size_t>(result.image.width) *
                    static_cast<std::size_t>(result.image.height));
    } else {
      EXPECT_FALSE(result.error().empty());
    }
  }
}

TEST_P(JpegCorruption, TruncatedStreamsFailGracefully) {
  const auto img = jpeg::synthetic_image(24, 24, 6);
  const auto bytes = jpeg::encode_image(img, 50);
  SplitMix64 rng(GetParam() + 17);
  for (int round = 0; round < 30; ++round) {
    const auto keep = rng.next_below(bytes.size());
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    const auto result = jpeg::decode_image(cut);
    (void)result.ok();  // must simply return
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JpegCorruption, ::testing::Values(3u, 11u));

// ---- random process networks: rebalancing invariants ----

class RebalanceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebalanceFuzz, InvariantsHoldOnRandomNetworks) {
  SplitMix64 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const int n_procs = 2 + static_cast<int>(rng.next_below(9));
    std::vector<procnet::Process> procs;
    for (int i = 0; i < n_procs; ++i) {
      procnet::Process p;
      p.name = "p" + std::to_string(i);
      p.runtime_cycles = 1 + static_cast<std::int64_t>(rng.next_below(100000));
      p.insts = 1 + static_cast<int>(rng.next_below(200));
      p.data3 = static_cast<int>(rng.next_below(30));
      p.replicable = rng.next_below(5) != 0;
      procs.push_back(p);
    }
    const auto net = procnet::ProcessNetwork::pipeline(procs, 16);
    const int budget = 1 + static_cast<int>(rng.next_below(20));
    for (const auto algo :
         {mapping::RebalanceAlgorithm::kOne, mapping::RebalanceAlgorithm::kTwo,
          mapping::RebalanceAlgorithm::kOpt}) {
      const auto b = mapping::rebalance(net, budget, algo,
                                        mapping::CostParams{});
      ASSERT_TRUE(b.validate(net).ok())
          << mapping::rebalance_name(algo) << " round " << round;
      EXPECT_LE(b.tile_count(), budget);
      const auto eval = mapping::evaluate(net, b, mapping::CostParams{});
      EXPECT_GT(eval.ii_ns, 0.0);
      EXPECT_GT(eval.avg_utilization, 0.0);
      EXPECT_LE(eval.avg_utilization, 1.0 + 1e-9);
      // Pipeline order preserved.
      int expected = 0;
      for (const auto& g : b.groups) {
        for (const int p : g.procs) EXPECT_EQ(p, expected++);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebalanceFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace cgra

// Automatic-mapper tests (ctest label: mapper).
//
// The headline suite: the mapper must re-derive or beat the paper's manual
// JPEG mappings (Table 3/4) at every published tile budget, the annealer
// must land within 5% of the exact oracle on every small-mesh case, and
// every emitted mapping must be legal — for randomized networks (100-graph
// fuzz per solver) and for the degenerate shapes a generator never quite
// expects (single process, chain, star, disconnected islands).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "apps/jpeg/process_table.hpp"
#include "common/prng.hpp"
#include "config/reconfig.hpp"
#include "mapper/mapper.hpp"

namespace cgra::mapper {
namespace {

// Fuzz iterations trimmed under sanitizers (the suites run the same cases).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kFuzzGraphs = 25;
#else
constexpr int kFuzzGraphs = 100;
#endif

MapperOptions fast_anneal(std::uint64_t seed = 1) {
  MapperOptions opt;
  opt.solver = SolverKind::kAnneal;
  opt.seed = seed;
  opt.anneal_iterations = 2000;
  opt.anneal_restarts = 2;
  return opt;
}

/// Every structural invariant a mapping must satisfy, in one place.
void expect_legal(const procnet::ProcessNetwork& net,
                  const MappedNetwork& mapped, int mesh_tiles, int budget,
                  const std::string& ctx) {
  ASSERT_TRUE(mapped.ok()) << ctx << ": " << mapped.status.message();
  // Binding: every process in exactly one group, replication only where
  // the network allows it.
  ASSERT_TRUE(mapped.binding.validate(net).ok())
      << ctx << ": " << mapped.binding.validate(net).message();
  // Tile budget respected (link capacity holds by construction: each tile
  // appears once, and a tile drives at most one steady output link).
  EXPECT_LE(mapped.binding.tile_count(), budget) << ctx;
  EXPECT_LE(mapped.binding.tile_count(), mesh_tiles) << ctx;
  // Placement: every replica on a distinct valid tile.
  ASSERT_TRUE(mapped.placement.validate(mapped.binding).ok())
      << ctx << ": " << mapped.placement.validate(mapped.binding).message();
  // Link plan: every inter-group edge routed exactly once.
  const auto owner = mapping::owner_of_processes(net, mapped.binding);
  std::set<int> expected;
  for (int e = 0; e < static_cast<int>(net.edges().size()); ++e) {
    const auto& edge = net.edges()[static_cast<std::size_t>(e)];
    if (owner[static_cast<std::size_t>(edge.from)] !=
        owner[static_cast<std::size_t>(edge.to)]) {
      expected.insert(e);
    }
  }
  std::set<int> routed;
  for (const auto& r : mapped.links.routes) {
    EXPECT_TRUE(routed.insert(r.edge).second)
        << ctx << ": edge " << r.edge << " routed twice";
    ASSERT_GE(static_cast<int>(r.path.size()), 2) << ctx;
    EXPECT_EQ(r.path.front(), r.from_tile) << ctx;
    EXPECT_EQ(r.path.back(), r.to_tile) << ctx;
  }
  EXPECT_EQ(routed, expected) << ctx << ": routed edge set mismatch";
  // The reported cost decomposition is self-consistent.
  EXPECT_DOUBLE_EQ(mapped.cost.copy_ns, mapped.links.copy_ns) << ctx;
  EXPECT_DOUBLE_EQ(mapped.cost.link_ns, mapped.links.link_ns) << ctx;
  EXPECT_DOUBLE_EQ(mapped.cost.ii_ns, mapped.eval.ii_ns) << ctx;
}

// --- the paper oracle: Table 3/4 JPEG mappings ---------------------------

TEST(MapperOracle, RederivesOrBeatsEveryManualJpegMapping) {
  for (const auto& m : jpeg::table4_manual_mappings()) {
    MapperOptions opt;
    opt.max_tiles = m.tiles;
    const auto manual = score_manual(m.network, m.binding, 4, 4, opt);
    ASSERT_TRUE(manual.ok()) << m.name << ": " << manual.status.message();
    const auto mapped = map_network(m.network, 4, 4, opt);
    expect_legal(m.network, mapped, 16, m.tiles, m.name);
    EXPECT_LE(mapped.cost.total_ns(), manual.cost.total_ns())
        << m.name << ": the mapper must re-derive or beat the paper's "
        << "manual mapping at " << m.tiles << " tiles";
  }
}

TEST(MapperOracle, ExactProofCompletesOnSmallBudgets) {
  // At 1, 2, 5 and 10 tiles the proof finishes comfortably inside the
  // default budgets; 13 tiles (Impl4) may exhaust them, which is allowed —
  // the mapping must still beat the manual one (previous test).
  for (const auto& m : jpeg::table4_manual_mappings()) {
    if (m.tiles > 10) continue;
    MapperOptions opt;
    opt.max_tiles = m.tiles;
    opt.solver = SolverKind::kExact;
    const auto mapped = map_network(m.network, 4, 4, opt);
    ASSERT_TRUE(mapped.ok()) << m.name;
    EXPECT_TRUE(mapped.optimal)
        << m.name << " explored " << mapped.nodes_explored << " nodes";
  }
}

TEST(MapperOracle, MatchesPaperNumbersAtPublishedBudgets) {
  // Impl1 (1 tile) and Impl2 (2 tiles) are provably unbeatable shapes: the
  // mapper's totals must equal the manual ones exactly.  Impl2's best
  // binding is NON-contiguous in pipeline order ({DCT} alone vs the rest),
  // so this also proves the search is over true set partitions.
  const auto manuals = jpeg::table4_manual_mappings();
  for (const auto& m : manuals) {
    if (m.tiles > 2) continue;
    MapperOptions opt;
    opt.max_tiles = m.tiles;
    const auto manual = score_manual(m.network, m.binding, 4, 4, opt);
    const auto mapped = map_network(m.network, 4, 4, opt);
    ASSERT_TRUE(mapped.ok()) << m.name;
    EXPECT_DOUBLE_EQ(mapped.cost.total_ns(), manual.cost.total_ns()) << m.name;
  }
}

TEST(MapperOracle, AnnealWithinFivePercentOfExactOnAllSmallMeshCases) {
  for (const auto& m : jpeg::table4_manual_mappings()) {
    MapperOptions opt;
    opt.max_tiles = m.tiles;
    opt.solver = SolverKind::kExact;
    const auto exact = map_network(m.network, 4, 4, opt);
    ASSERT_TRUE(exact.ok()) << m.name;
    const MapperOptions aopt = [&] {
      MapperOptions o;
      o.max_tiles = m.tiles;
      o.solver = SolverKind::kAnneal;
      return o;
    }();
    const auto anneal = map_network(m.network, 4, 4, aopt);
    ASSERT_TRUE(anneal.ok()) << m.name;
    EXPECT_LE(anneal.cost.total_ns(), exact.cost.total_ns() * 1.05)
        << m.name << ": anneal " << anneal.cost.total_ns() << " vs exact "
        << exact.cost.total_ns();
  }
}

TEST(MapperOracle, ReplicationRederivesTheSplitPipelineWin) {
  // At 5 tiles on the split pipeline the known-optimal shape is {dct} x4
  // plus everything else on one tile: II = 4 * 33372 cycles / 4 replicas.
  const auto net = jpeg::jpeg_split_pipeline();
  MapperOptions opt;
  opt.max_tiles = 5;
  const auto mapped = map_network(net, 4, 4, opt);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped.optimal);
  EXPECT_DOUBLE_EQ(mapped.cost.total_ns(), cycles_to_ns(33372));
  bool found_replicated_dct = false;
  for (const auto& g : mapped.binding.groups) {
    if (g.replication == 4 && g.procs.size() == 1) found_replicated_dct = true;
  }
  EXPECT_TRUE(found_replicated_dct) << mapped.binding.describe(net);
}

// --- solver auto-selection and determinism -------------------------------

TEST(Mapper, AutoPicksExactOnSmallMeshesAndAnnealOnLarge) {
  const auto net = jpeg::jpeg_main_pipeline();
  const auto small = map_network(net, 4, 4, {});
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.solver, "exact");
  const auto large = map_network(net, 5, 5, {});
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large.solver, "anneal");
  expect_legal(net, large, 25, 25, "5x5 anneal");
}

TEST(Mapper, SameInputsSameMapping) {
  const auto net = jpeg::jpeg_split_pipeline();
  for (const SolverKind kind : {SolverKind::kExact, SolverKind::kAnneal}) {
    MapperOptions opt;
    opt.solver = kind;
    opt.max_tiles = 6;
    const auto a = map_network(net, 4, 4, opt);
    const auto b = map_network(net, 4, 4, opt);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.binding.describe(net), b.binding.describe(net));
    EXPECT_EQ(a.placement.tile_of, b.placement.tile_of);
    EXPECT_DOUBLE_EQ(a.cost.total_ns(), b.cost.total_ns());
  }
}

// --- bandwidth-aware link allocation -------------------------------------

TEST(MapperLinks, HottestEdgeWinsTheContestedSteadyLink) {
  // P0 fans out to P1 (hot, 100 words) and P2 (cold, 10 words) on a 2x2
  // mesh with P0 at tile 0, P1 east (tile 1), P2 south (tile 2).  Tile 0
  // drives one steady 48-wire link: the hot edge must win it and the cold
  // edge must pay a per-item link flip.
  procnet::ProcessNetwork net;
  net.add_process({"P0", 10, 0, 0, 0, 100, 1, true});
  net.add_process({"P1", 10, 0, 0, 0, 100, 1, true});
  net.add_process({"P2", 10, 0, 0, 0, 100, 1, true});
  net.add_edge(0, 1, 100);
  net.add_edge(0, 2, 10);

  mapping::Binding binding;
  binding.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}};
  mapping::Placement placement;
  placement.mesh_rows = 2;
  placement.mesh_cols = 2;
  placement.tile_of = {{0}, {1}, {2}};

  const CostModel cost;
  const auto plan = plan_links(net, binding, placement, cost);
  ASSERT_EQ(plan.routes.size(), 2u);
  // Routes come back hottest first.
  EXPECT_EQ(plan.routes[0].words, 100);
  EXPECT_EQ(plan.routes[0].owned_links, 1);
  EXPECT_EQ(plan.routes[0].switched_links, 0);
  EXPECT_EQ(plan.routes[1].words, 10);
  EXPECT_EQ(plan.routes[1].owned_links, 0);
  EXPECT_EQ(plan.routes[1].switched_links, 1);
  EXPECT_DOUBLE_EQ(plan.link_ns, cost.link.per_link_ns);
  EXPECT_DOUBLE_EQ(plan.routes[0].ns_per_item(), 0.0);  // adjacent + owned
}

// --- randomized fuzz: both solvers, every mapping legal ------------------

procnet::ProcessNetwork random_network(SplitMix64& rng, int max_procs) {
  procnet::ProcessNetwork net;
  const int n = 1 + static_cast<int>(rng.next_below(
                        static_cast<std::uint64_t>(max_procs)));
  for (int i = 0; i < n; ++i) {
    procnet::Process p;
    p.name = "p" + std::to_string(i);
    p.insts = 1 + static_cast<int>(rng.next_below(200));
    p.data1 = static_cast<int>(rng.next_below(100));
    p.data2 = static_cast<int>(rng.next_below(100));
    p.data3 = static_cast<int>(rng.next_below(100));
    p.runtime_cycles = 1 + static_cast<int>(rng.next_below(50'000));
    p.invocations_per_item = 1 + static_cast<int>(rng.next_below(4));
    p.replicable = rng.next_below(2) == 0;
    net.add_process(p);
  }
  // Forward edges only (a DAG); possibly disconnected.
  for (int b = 1; b < n; ++b) {
    for (int a = 0; a < b; ++a) {
      if (rng.next_below(100) < 40) {
        net.add_edge(a, b, 1 + static_cast<int>(rng.next_below(128)));
      }
    }
  }
  return net;
}

TEST(MapperFuzz, ExactMappingsAreLegalOnRandomGraphs) {
  SplitMix64 rng(0xE1);
  for (int i = 0; i < kFuzzGraphs; ++i) {
    const auto net = random_network(rng, 8);
    MapperOptions opt;
    opt.solver = SolverKind::kExact;
    const auto mapped = map_network(net, 3, 3, opt);
    expect_legal(net, mapped, 9, 9, "exact graph " + std::to_string(i));
  }
}

TEST(MapperFuzz, AnnealMappingsAreLegalOnRandomGraphs) {
  SplitMix64 rng(0xA2);
  for (int i = 0; i < kFuzzGraphs; ++i) {
    const auto net = random_network(rng, 16);
    const auto mapped = map_network(net, 5, 5, fast_anneal(17 + i));
    expect_legal(net, mapped, 25, 25, "anneal graph " + std::to_string(i));
  }
}

TEST(MapperFuzz, ExactNeverLosesToAnnealWhenProofCompletes) {
  SplitMix64 rng(0xEA);
  for (int i = 0; i < kFuzzGraphs / 5; ++i) {
    const auto net = random_network(rng, 6);
    MapperOptions opt;
    opt.solver = SolverKind::kExact;
    const auto exact = map_network(net, 3, 3, opt);
    ASSERT_TRUE(exact.ok());
    if (!exact.optimal) continue;
    const auto anneal = map_network(net, 3, 3, fast_anneal(29 + i));
    ASSERT_TRUE(anneal.ok());
    EXPECT_LE(exact.cost.total_ns(), anneal.cost.total_ns() + 1e-6)
        << "graph " << i;
  }
}

// --- degenerate shapes ---------------------------------------------------

procnet::Process simple_process(const std::string& name, int cycles) {
  procnet::Process p;
  p.name = name;
  p.insts = 10;
  p.runtime_cycles = cycles;
  return p;
}

TEST(MapperDegenerate, SingleProcess) {
  procnet::ProcessNetwork net;
  net.add_process(simple_process("only", 1000));
  for (const SolverKind kind : {SolverKind::kExact, SolverKind::kAnneal}) {
    MapperOptions opt;
    opt.solver = kind;
    const auto mapped = map_network(net, 4, 4, opt);
    expect_legal(net, mapped, 16, 16, solver_kind_name(kind));
    EXPECT_DOUBLE_EQ(mapped.cost.copy_ns, 0.0);
    EXPECT_DOUBLE_EQ(mapped.cost.link_ns, 0.0);
  }
}

TEST(MapperDegenerate, ChainStarAndDisconnected) {
  std::vector<procnet::ProcessNetwork> nets;
  {
    procnet::ProcessNetwork chain;
    for (int i = 0; i < 5; ++i) {
      chain.add_process(simple_process("c" + std::to_string(i), 100 * (i + 1)));
    }
    for (int i = 0; i + 1 < 5; ++i) chain.add_edge(i, i + 1, 16);
    nets.push_back(std::move(chain));
  }
  {
    procnet::ProcessNetwork star;  // one producer feeding four consumers
    star.add_process(simple_process("hub", 5000));
    for (int i = 1; i <= 4; ++i) {
      star.add_process(simple_process("leaf" + std::to_string(i), 700));
      star.add_edge(0, i, 8 * i);
    }
    nets.push_back(std::move(star));
  }
  {
    procnet::ProcessNetwork islands;  // two unconnected chains
    for (int i = 0; i < 4; ++i) {
      islands.add_process(simple_process("i" + std::to_string(i), 900));
    }
    islands.add_edge(0, 1, 4);
    islands.add_edge(2, 3, 4);
    nets.push_back(std::move(islands));
  }
  for (std::size_t n = 0; n < nets.size(); ++n) {
    for (const SolverKind kind : {SolverKind::kExact, SolverKind::kAnneal}) {
      MapperOptions opt;
      opt.solver = kind;
      const auto mapped = map_network(nets[n], 3, 3, opt);
      expect_legal(nets[n], mapped, 9, 9,
                   "net " + std::to_string(n) + " " + solver_kind_name(kind));
    }
  }
}

TEST(MapperDegenerate, InvalidInputsAreDiagnosed) {
  procnet::ProcessNetwork empty;
  EXPECT_FALSE(map_network(empty, 4, 4, {}).ok());

  procnet::ProcessNetwork net;
  net.add_process(simple_process("a", 100));
  EXPECT_FALSE(map_network(net, 0, 4, {}).ok());

  procnet::ProcessNetwork fat;
  auto p = simple_process("fat", 100);
  p.insts = kInstMemWords + 1;  // cannot fit any tile's instruction memory
  fat.add_process(p);
  const auto mapped = map_network(fat, 4, 4, {});
  EXPECT_FALSE(mapped.ok());
  EXPECT_NE(std::string(mapped.status.message()).find("instruction"),
            std::string::npos);
}

TEST(MapperDegenerate, SingleTileBudgetGroupsEverything) {
  const auto net = jpeg::jpeg_main_pipeline();
  MapperOptions opt;
  opt.max_tiles = 1;
  const auto mapped = map_network(net, 4, 4, opt);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped.binding.groups.size(), 1u);
  EXPECT_EQ(static_cast<int>(mapped.binding.groups[0].procs.size()),
            net.size());
}

// --- end to end: map, compile, execute on the fabric ---------------------

TEST(MapperEndToEnd, MappedScheduleComputesTheRightBlock) {
  // No hand placement anywhere: the mapper places the measured JPEG
  // transform pipeline, the schedule compiler lowers it, and the fabric
  // must still produce the host-reference block.
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto quant = jpeg::scaled_quant(50);
  const auto lib = jpeg::jpeg_program_library(quant);

  MapperOptions opt;
  opt.max_tiles = 3;
  const auto mapped = map_network(net, 2, 2, opt);
  expect_legal(net, mapped, 4, 3, "transform pipeline");

  const auto compiled = compile_mapped_schedule(net, mapped, lib);
  ASSERT_TRUE(compiled.ok()) << compiled.status.message();

  SplitMix64 rng(7);
  jpeg::IntBlock raw{};
  for (auto& v : raw) v = static_cast<int>(rng.next_below(256));

  fabric::Fabric fab(2, 2);
  const jpeg::JpegLayout lay;
  const auto owner = mapping::owner_of_processes(net, mapped.binding);
  const int in_tile =
      mapped.placement.tile_of[static_cast<std::size_t>(owner[0])][0];
  for (int i = 0; i < 64; ++i) {
    fab.tile(in_tile).set_dmem(lay.x + i,
                               from_signed(raw[static_cast<std::size_t>(i)]));
  }
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  const auto result = config::run_schedule(fab, ctrl, compiled.epochs,
                                           10'000'000);
  ASSERT_TRUE(result.ok);

  const int zigzag = net.size() - 1;
  const int out_tile =
      mapped.placement.tile_of[static_cast<std::size_t>(owner[zigzag])][0];
  jpeg::IntBlock out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(to_signed(fab.tile(out_tile).dmem(lay.t + i)));
  }
  EXPECT_EQ(out, jpeg::encode_block_stages(raw, quant));
}

}  // namespace
}  // namespace cgra::mapper

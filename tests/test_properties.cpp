// Cross-geometry property sweeps: the structural invariants of the
// partitioning, twiddle management and performance model must hold for
// every legal (N, M, cols) combination, not just the paper's 1024/128.
#include <gtest/gtest.h>

#include <set>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/twiddle.hpp"
#include "dse/fft_perf_model.hpp"

namespace cgra {
namespace {

struct Geo {
  int n;
  int m;
};

class GeometrySweep : public ::testing::TestWithParam<Geo> {};

TEST_P(GeometrySweep, PartitionArithmeticConsistent) {
  const auto [n, m] = GetParam();
  const auto g = fft::make_geometry(n, m);
  EXPECT_EQ(g.rows * g.m, g.n);
  EXPECT_EQ(g.cross_stages(),
            fft::log2_exact(static_cast<std::size_t>(g.rows)));
  // Half spans halve from N/2 down to 1.
  EXPECT_EQ(g.half_span(0), n / 2);
  EXPECT_EQ(g.half_span(g.stages - 1), 1);
  // Twiddle need per stage never grows.
  for (int s = 1; s < g.stages; ++s) {
    EXPECT_LE(g.twiddles_for_stage(s), g.twiddles_for_stage(s - 1)) << s;
  }
}

TEST_P(GeometrySweep, ElementPositionsAreBijective) {
  const auto [n, m] = GetParam();
  const auto g = fft::make_geometry(n, m);
  for (int s = 0; s < g.stages; ++s) {
    std::set<std::pair<int, int>> seen;
    for (int e = 0; e < g.n; ++e) {
      const auto pos = fft::element_position(g, s, e);
      EXPECT_TRUE(seen.insert({pos.row, pos.slot}).second)
          << "collision stage " << s << " element " << e;
    }
  }
}

TEST_P(GeometrySweep, TwiddleInvariants) {
  const auto [n, m] = GetParam();
  const auto g = fft::make_geometry(n, m);
  for (const int cols : dse::usable_column_counts(g)) {
    const auto report = fft::analyze_twiddles(g, cols);
    // Reloads and generation never exceed the naive total.
    EXPECT_LE(report.reload_words, report.naive_words) << cols;
    EXPECT_GE(report.reload_words, 0) << cols;
    // Every slot is classified and yellow <=> pays words.
    EXPECT_EQ(report.slots.size(),
              static_cast<std::size_t>(g.rows * g.stages));
    long long yellow = 0;
    for (const auto& slot : report.slots) {
      EXPECT_EQ(slot.cls == fft::TwiddleClass::kYellow,
                slot.reload_words > 0);
      yellow += slot.reload_words;
    }
    EXPECT_EQ(yellow, report.reload_words);
    // The paper rule is monotone and bounded by the naive count.
    EXPECT_LE(fft::paper_reload_words(g, cols), report.naive_words);
  }
  EXPECT_EQ(fft::analyze_twiddles(g, g.stages).reload_words, 0);
}

TEST_P(GeometrySweep, PerfModelInvariants) {
  const auto [n, m] = GetParam();
  const auto g = fft::make_geometry(n, m);
  // Synthetic but plausible kernel times.
  dse::FftProcessTimes times;
  for (int s = 0; s < g.stages; ++s) {
    times.bf.push_back(1000.0 + 100.0 * s);
  }
  times.vcp = 400;
  times.hcp = 800;
  for (const int cols : dse::usable_column_counts(g)) {
    double prev = 1e300;
    for (const double link : {0.0, 500.0, 2000.0}) {
      const auto cost = dse::evaluate_fft_design(g, times, cols, link);
      for (const double tau : cost.tau) EXPECT_GE(tau, 0.0);
      EXPECT_GT(cost.total_ns(), 0.0);
      EXPECT_LE(cost.total_ns(), prev * 1e9);  // sanity, no NaN/inf
      // Total time is non-decreasing in link cost.
      if (prev < 1e299) {
        EXPECT_GE(cost.total_ns() + 1e-9, prev) << cols << "@" << link;
      }
      prev = cost.total_ns();
    }
    // tau2 (the pipeline term) shrinks as columns are added: compare the
    // one-column sum against this design's lockstep sum.
    const auto wide = dse::evaluate_fft_design(g, times, cols, 0.0);
    const auto narrow = dse::evaluate_fft_design(g, times, 1, 0.0);
    EXPECT_LE(wide.tau[2], narrow.tau[2] + 1e-9) << cols;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(Geo{16, 4}, Geo{16, 8}, Geo{32, 8}, Geo{64, 8},
                      Geo{64, 16}, Geo{128, 16}, Geo{256, 32}, Geo{512, 64},
                      Geo{1024, 128}, Geo{2048, 128}, Geo{4096, 128}),
    [](const ::testing::TestParamInfo<Geo>& info) {
      return "N" + std::to_string(info.param.n) + "M" +
             std::to_string(info.param.m);
    });

}  // namespace
}  // namespace cgra

// JPEG process-table and manual-mapping tests (Tables 3 and 4 machinery).
#include <gtest/gtest.h>

#include "apps/jpeg/process_table.hpp"
#include "mapping/rebalance.hpp"

namespace cgra::jpeg {
namespace {

using mapping::CostParams;
using mapping::evaluate;

TEST(ProcessTable, Table3AnnotationsPresent) {
  const auto procs = paper_table3_processes();
  ASSERT_GE(procs.size(), 14u);
  EXPECT_EQ(procs[1].name, "DCT");
  EXPECT_EQ(procs[1].runtime_cycles, 133324);
  EXPECT_EQ(procs[1].insts, 62);
  EXPECT_EQ(procs[9].name, "Hman5");
  EXPECT_EQ(procs[9].data3, 17);
  EXPECT_EQ(procs[10].name, "dct");
  EXPECT_EQ(procs[10].invocations_per_item, 4);
}

TEST(ProcessTable, PipelinesValidate) {
  EXPECT_TRUE(jpeg_main_pipeline().validate().ok());
  EXPECT_TRUE(jpeg_split_pipeline().validate().ok());
  EXPECT_EQ(jpeg_main_pipeline().size(), 10);
}

TEST(ProcessTable, SplitPipelineWorkMatchesMain) {
  // 4 x dct ~ DCT (33372*4 = 133488 ~ 133324): total work within 1%.
  const auto main_work = jpeg_main_pipeline().total_work_cycles();
  const auto split_work = jpeg_split_pipeline().total_work_cycles();
  EXPECT_NEAR(static_cast<double>(split_work),
              static_cast<double>(main_work),
              0.01 * static_cast<double>(main_work));
}

TEST(Table4, AllManualMappingsValidate) {
  for (const auto& m : table4_manual_mappings()) {
    EXPECT_TRUE(m.binding.validate(m.network).ok()) << m.name;
    EXPECT_EQ(m.binding.tile_count(), m.tiles) << m.name;
  }
}

TEST(Table4, DctBoundPairsShareThroughput) {
  // "whether we use two tiles or 10 tiles, throughput is the same,
  //  similarly when we use 5 or 13 tiles."
  const auto maps = table4_manual_mappings();
  const CostParams params{};
  std::map<std::string, double> ips;
  for (const auto& m : maps) {
    ips[m.name] = evaluate(m.network, m.binding, params).items_per_sec;
  }
  EXPECT_NEAR(ips["Impl2"] / ips["Impl3"], 1.0, 0.05);
  EXPECT_NEAR(ips["Impl4"] / ips["Impl5"], 1.0, 0.05);
  // Splitting the DCT lifts throughput by ~4x.
  EXPECT_NEAR(ips["Impl4"] / ips["Impl2"], 4.0, 0.5);
}

TEST(Table4, Impl1IsFullyUtilised) {
  const auto maps = table4_manual_mappings();
  const auto eval = evaluate(maps[0].network, maps[0].binding, CostParams{});
  EXPECT_NEAR(eval.avg_utilization, 1.0, 1e-9);
  EXPECT_TRUE(eval.needs_reconfig);
}

TEST(Table4, Impl3UtilisationMatchesPaper) {
  // Paper: 10-tile one-to-one mapping averages 0.12 utilisation.
  const auto maps = table4_manual_mappings();
  const auto& impl3 = maps[2];
  const auto eval = evaluate(impl3.network, impl3.binding, CostParams{});
  EXPECT_NEAR(eval.avg_utilization, 0.12, 0.02);
  EXPECT_FALSE(eval.needs_reconfig);
}

TEST(Table4, Impl5HasBestUtilisation) {
  const auto maps = table4_manual_mappings();
  const CostParams params{};
  double best = 0.0;
  std::string best_name;
  for (const auto& m : maps) {
    if (m.name == "Impl1") continue;  // trivially 1.0 on a single tile
    const auto eval = evaluate(m.network, m.binding, params);
    if (eval.avg_utilization > best) {
      best = eval.avg_utilization;
      best_name = m.name;
    }
  }
  EXPECT_EQ(best_name, "Impl5");
  EXPECT_GT(best, 0.85);  // paper: 0.98
}

TEST(Table4, ReLinkOnlyWhenDctReplicated) {
  const auto maps = table4_manual_mappings();
  const CostParams params{};
  for (const auto& m : maps) {
    const auto eval = evaluate(m.network, m.binding, params);
    const bool expect_relink = (m.name == "Impl4" || m.name == "Impl5");
    EXPECT_EQ(eval.needs_relink, expect_relink) << m.name;
  }
}

TEST(MeasuredPipeline, UsesFabricNumbers) {
  const auto cycles = measure_jpeg_kernels();
  const auto net = measured_pipeline(cycles);
  EXPECT_TRUE(net.validate().ok());
  EXPECT_EQ(net.process(1).runtime_cycles, cycles.dct);
  EXPECT_EQ(net.process(4).runtime_cycles, cycles.zigzag);
}

TEST(Rebalance24, DctDominatesTileAllocation) {
  // Table 5: at 24 tiles reBalanceOne gives DCT 17 tiles (the lion's
  // share). Exact counts depend on the cost model; the structural claim is
  // that the DCT group receives by far the most replicas.
  const auto net = jpeg_main_pipeline();
  const auto b =
      mapping::rebalance(net, 24, mapping::RebalanceAlgorithm::kOne,
                         CostParams{});
  EXPECT_TRUE(b.validate(net).ok());
  int dct_tiles = 0;
  int max_other = 0;
  for (const auto& g : b.groups) {
    const bool is_dct =
        g.procs.size() == 1 && net.process(g.procs[0]).name == "DCT";
    if (is_dct) {
      dct_tiles = g.replication;
    } else {
      max_other = std::max(max_other, g.replication);
    }
  }
  EXPECT_GE(dct_tiles, 12);
  EXPECT_GT(dct_tiles, 3 * max_other);
}

}  // namespace
}  // namespace cgra::jpeg

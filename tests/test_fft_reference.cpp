// Reference FFT tests: DIF FFT vs naive DFT, parseval, linearity.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft/reference.hpp"
#include "common/prng.hpp"

namespace cgra::fft {
namespace {

std::vector<Cplx> random_signal(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Cplx> x(n);
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
  return x;
}

TEST(ReferenceFft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_exact(1024), 10);
  EXPECT_EQ(bit_reverse(0b0011, 4), 0b1100u);
  EXPECT_EQ(bit_reverse(1, 10), 512u);
}

TEST(ReferenceFft, ImpulseGivesFlatSpectrum) {
  std::vector<Cplx> x(16, Cplx{0, 0});
  x[0] = {1, 0};
  const auto y = fft(x);
  for (const auto& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(ReferenceFft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Cplx> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = twiddle(n, (n - 5) * j % n);  // e^{+2 pi i 5 j / n}
  }
  const auto y = fft(x);
  EXPECT_NEAR(std::abs(y[5]), static_cast<double>(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5) {
      EXPECT_NEAR(std::abs(y[k]), 0.0, 1e-9) << k;
    }
  }
}

class FftVsDft : public ::testing::TestWithParam<int> {};

TEST_P(FftVsDft, MatchesNaiveDft) {
  const auto n = static_cast<std::size_t>(GetParam());
  const auto x = random_signal(n, 0xBEEF + n);
  const auto fast = fft(x);
  const auto slow = dft_naive(x);
  EXPECT_LT(rms_error(fast, slow), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsDft,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

TEST(ReferenceFft, LinearityProperty) {
  const std::size_t n = 128;
  const auto a = random_signal(n, 1);
  const auto b = random_signal(n, 2);
  std::vector<Cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fs = fft(sum);
  double err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    err += std::norm(fs[i] - (2.0 * fa[i] + 3.0 * fb[i]));
  }
  EXPECT_LT(std::sqrt(err / n), 1e-10);
}

TEST(ReferenceFft, ParsevalProperty) {
  const std::size_t n = 256;
  const auto x = random_signal(n, 7);
  const auto y = fft(x);
  double ex = 0, ey = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * static_cast<double>(n), 1e-6 * ex * n);
}

TEST(ReferenceFft, DifOutputIsBitReversedNaturalFft) {
  const std::size_t n = 32;
  auto x = random_signal(n, 3);
  const auto natural = fft(x);
  auto dif = x;
  fft_dif(dif);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(dif[i] - natural[bit_reverse(i, 5)]), 0.0, 1e-9);
  }
}

TEST(ReferenceFft, RejectsNonPowerOfTwo) {
  std::vector<Cplx> x(12);
  EXPECT_THROW(fft_dif(x), std::invalid_argument);
  EXPECT_THROW(FftPlan(12), std::invalid_argument);
}

TEST(ReferenceFft, PlanMatchesAdHocTransform) {
  const std::size_t n = 512;
  const auto x = random_signal(n, 21);
  const FftPlan plan(n);
  const auto planned = plan.transform(x);
  const auto adhoc = fft(x);
  EXPECT_LT(rms_error(planned, adhoc), 1e-10);
}

TEST(ReferenceFft, PlanRejectsSizeMismatch) {
  const FftPlan plan(64);
  std::vector<Cplx> x(32);
  EXPECT_THROW(plan.transform_dif(x), std::invalid_argument);
}

TEST(ReferenceFft, PlanIsReusableAcrossTransforms) {
  const FftPlan plan(128);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto x = random_signal(128, seed);
    EXPECT_LT(rms_error(plan.transform(x), fft(x)), 1e-10) << seed;
  }
}

}  // namespace
}  // namespace cgra::fft

// Interconnect tests: mesh topology, single-output-link rule, link deltas.
#include <gtest/gtest.h>

#include "interconnect/link.hpp"

namespace cgra::interconnect {
namespace {

TEST(Link, OppositeDirections) {
  EXPECT_EQ(opposite(Direction::kNorth), Direction::kSouth);
  EXPECT_EQ(opposite(Direction::kSouth), Direction::kNorth);
  EXPECT_EQ(opposite(Direction::kEast), Direction::kWest);
  EXPECT_EQ(opposite(Direction::kWest), Direction::kEast);
}

TEST(Link, NeighborsInsideMesh) {
  LinkConfig lc(3, 3);
  // Centre tile (1,1) = index 4.
  EXPECT_EQ(lc.neighbor(4, Direction::kNorth), 1);
  EXPECT_EQ(lc.neighbor(4, Direction::kSouth), 7);
  EXPECT_EQ(lc.neighbor(4, Direction::kEast), 5);
  EXPECT_EQ(lc.neighbor(4, Direction::kWest), 3);
}

TEST(Link, EdgesHaveNoNeighbor) {
  LinkConfig lc(2, 2);
  EXPECT_FALSE(lc.neighbor(0, Direction::kNorth).has_value());
  EXPECT_FALSE(lc.neighbor(0, Direction::kWest).has_value());
  EXPECT_FALSE(lc.neighbor(3, Direction::kSouth).has_value());
  EXPECT_FALSE(lc.neighbor(3, Direction::kEast).has_value());
}

TEST(Link, SetOutputRejectsEdges) {
  LinkConfig lc(2, 2);
  EXPECT_FALSE(lc.set_output(0, Direction::kNorth));
  EXPECT_FALSE(lc.output(0).has_value());
  EXPECT_TRUE(lc.set_output(0, Direction::kEast));
  EXPECT_EQ(lc.output(0), Direction::kEast);
  EXPECT_EQ(lc.target(0), 1);
}

TEST(Link, OneOutputLinkAtATime) {
  // "Each tile is connected to its neighbour in one of the four principal
  // directions at any instant in time."
  LinkConfig lc(2, 2);
  EXPECT_TRUE(lc.set_output(0, Direction::kEast));
  EXPECT_TRUE(lc.set_output(0, Direction::kSouth));  // replaces, not adds
  EXPECT_EQ(lc.output(0), Direction::kSouth);
  EXPECT_EQ(lc.target(0), 2);
}

TEST(Link, ClearLink) {
  LinkConfig lc(2, 2);
  lc.set_output(0, Direction::kEast);
  EXPECT_TRUE(lc.set_output(0, std::nullopt));
  EXPECT_FALSE(lc.target(0).has_value());
}

TEST(Link, ChangedLinksCountsDifferences) {
  LinkConfig a(2, 2);
  LinkConfig b(2, 2);
  EXPECT_EQ(LinkConfig::changed_links(a, b), 0);
  a.set_output(0, Direction::kEast);
  EXPECT_EQ(LinkConfig::changed_links(a, b), 1);
  b.set_output(0, Direction::kEast);
  b.set_output(2, Direction::kNorth);
  EXPECT_EQ(LinkConfig::changed_links(a, b), 1);
  a.set_output(2, Direction::kEast);
  EXPECT_EQ(LinkConfig::changed_links(a, b), 1);  // differing direction
}

TEST(Link, CostModelScalesWithDelta) {
  LinkCostModel cost{700.0};
  LinkConfig a(2, 2);
  LinkConfig b(2, 2);
  b.set_output(0, Direction::kEast);
  b.set_output(1, Direction::kSouth);
  EXPECT_DOUBLE_EQ(cost.transition_ns(a, b), 1400.0);
  EXPECT_DOUBLE_EQ(cost.links_ns(3), 2100.0);
}

TEST(Link, CoordRoundTrip) {
  LinkConfig lc(4, 5);
  for (int i = 0; i < lc.tile_count(); ++i) {
    EXPECT_EQ(lc.index(lc.coord(i)), i);
  }
}

}  // namespace
}  // namespace cgra::interconnect

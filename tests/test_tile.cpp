// Tile interpreter semantics: every opcode, addressing modes, faults.
#include <gtest/gtest.h>

#include "common/fixed_complex.hpp"
#include "fabric/tile.hpp"
#include "isa/assembler.hpp"

namespace cgra::fabric {
namespace {

using isa::assemble;

/// Run `src` on a fresh tile until halt; returns the tile.
Tile run_tile(const std::string& src, int max_cycles = 100000) {
  auto r = assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  Tile t;
  EXPECT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < max_cycles && !t.halted(); ++c) {
    t.step(0, c, LinkState::kNone, remote);
  }
  EXPECT_TRUE(t.halted()) << "program did not halt";
  return t;
}

std::int64_t signed_dmem(const Tile& t, int addr) {
  return cgra::to_signed(t.dmem(addr));
}

TEST(Tile, MoviAndMov) {
  const Tile t = run_tile("  movi 0, #123\n  mov 1, 0\n  halt\n");
  EXPECT_EQ(signed_dmem(t, 0), 123);
  EXPECT_EQ(signed_dmem(t, 1), 123);
}

TEST(Tile, NegativeImmediateSignExtends) {
  const Tile t = run_tile("  movi 0, #-5\n  halt\n");
  EXPECT_EQ(signed_dmem(t, 0), -5);
}

TEST(Tile, ArithmeticOps) {
  const Tile t = run_tile(
      "  movi 0, #7\n  movi 1, #-3\n"
      "  add 2, 0, 1\n  sub 3, 0, 1\n  mul 4, 0, 1\n  halt\n");
  EXPECT_EQ(signed_dmem(t, 2), 4);
  EXPECT_EQ(signed_dmem(t, 3), 10);
  EXPECT_EQ(signed_dmem(t, 4), -21);
}

TEST(Tile, LogicAndShifts) {
  const Tile t = run_tile(
      "  movi 0, #12\n  movi 1, #10\n"
      "  and 2, 0, 1\n  orr 3, 0, 1\n  xor 4, 0, 1\n"
      "  shl 5, 0, #2\n  shr 6, 0, #2\n"
      "  movi 7, #-8\n  sra 8, 7, #1\n  shr 9, 7, #1\n  halt\n");
  EXPECT_EQ(signed_dmem(t, 2), 8);
  EXPECT_EQ(signed_dmem(t, 3), 14);
  EXPECT_EQ(signed_dmem(t, 4), 6);
  EXPECT_EQ(signed_dmem(t, 5), 48);
  EXPECT_EQ(signed_dmem(t, 6), 3);
  EXPECT_EQ(signed_dmem(t, 8), -4);
  // Logical shift of a negative 48-bit value exposes the mask.
  EXPECT_EQ(t.dmem(9), (cgra::kWordMask - 7) >> 1);
}

TEST(Tile, ComplexOps) {
  Tile t;
  auto r = assemble("  cadd 2, 0, 1\n  csub 3, 0, 1\n  cmul 4, 0, 1\n  halt\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(t.load_program(r.program));
  const auto a = cgra::to_fixed({0.5, 0.25});
  const auto b = cgra::to_fixed({0.125, -0.5});
  t.set_dmem(0, cgra::pack_complex(a));
  t.set_dmem(1, cgra::pack_complex(b));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 100 && !t.halted(); ++c) t.step(0, c, LinkState::kNone, remote);
  EXPECT_EQ(t.dmem(2), cgra::word_cadd(t.dmem(0), t.dmem(1)));
  EXPECT_EQ(t.dmem(3), cgra::word_csub(t.dmem(0), t.dmem(1)));
  EXPECT_EQ(t.dmem(4), cgra::word_cmul(t.dmem(0), t.dmem(1)));
}

TEST(Tile, IndirectAddressing) {
  const Tile t = run_tile(
      "  movi 10, #99\n"
      "  movi 0, #10\n"   // pointer to 10
      "  mov 1, 0*\n"     // 1 = dmem[dmem[0]] = 99
      "  movi 2, #20\n"
      "  movi 3, #55\n"
      "  mov 2*, 3\n"     // dmem[20] = 55
      "  halt\n");
  EXPECT_EQ(signed_dmem(t, 1), 99);
  EXPECT_EQ(signed_dmem(t, 20), 55);
}

TEST(Tile, CountdownLoop) {
  const Tile t = run_tile(
      "  movi 0, #10\n  movi 1, #0\n"
      "loop:\n"
      "  add 1, 1, #3\n"
      "  sub 0, 0, #1\n"
      "  bnez 0, loop\n"
      "  halt\n");
  EXPECT_EQ(signed_dmem(t, 1), 30);
}

TEST(Tile, BranchConditions) {
  const Tile t = run_tile(
      "  movi 0, #-1\n"
      "  bltz 0, neg\n"
      "  movi 1, #111\n"
      "  halt\n"
      "neg:\n"
      "  movi 1, #222\n"
      "  beqz 1, never\n"
      "  halt\n"
      "never:\n"
      "  movi 1, #333\n"
      "  halt\n");
  EXPECT_EQ(signed_dmem(t, 1), 222);
}

TEST(Tile, RemoteWriteEmitted) {
  auto r = assemble("  movi 0, #77\n  mov !5, 0\n  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 10 && !t.halted(); ++c) t.step(3, c, LinkState::kUp, remote);
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].src_tile, 3);
  EXPECT_EQ(remote[0].addr, 5);
  EXPECT_EQ(cgra::to_signed(remote[0].value), 77);
  EXPECT_EQ(t.stats().remote_writes, 1);
}

TEST(Tile, RemoteWriteWithoutLinkFaults) {
  auto r = assemble("  movi 0, #1\n  mov !5, 0\n  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 10 && !t.halted(); ++c) t.step(0, c, LinkState::kNone, remote);
  EXPECT_TRUE(t.faulted());
  EXPECT_EQ(t.fault().kind, FaultKind::kNoActiveLink);
}

TEST(Tile, OutOfRangeIndirectFaults) {
  auto r = assemble("  movi 0, #5000\n  mov 1, 0*\n  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 10 && !t.halted(); ++c) t.step(0, c, LinkState::kNone, remote);
  EXPECT_TRUE(t.faulted());
  EXPECT_EQ(t.fault().kind, FaultKind::kAddressOutOfRange);
}

TEST(Tile, NegativePointerFaults) {
  auto r = assemble("  movi 0, #-1\n  mov 1, 0*\n  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 10 && !t.halted(); ++c) t.step(0, c, LinkState::kNone, remote);
  EXPECT_TRUE(t.faulted());
}

TEST(Tile, PcRunoffFaults) {
  auto r = assemble("  nop\n");  // no halt
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  std::vector<RemoteWrite> remote;
  for (int c = 0; c < 10 && !t.halted(); ++c) t.step(0, c, LinkState::kNone, remote);
  EXPECT_TRUE(t.faulted());
  EXPECT_EQ(t.fault().kind, FaultKind::kPcOutOfRange);
}

TEST(Tile, StallSuppressesExecution) {
  auto r = assemble("  movi 0, #1\n  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  t.restart();
  t.stall_until(5);
  std::vector<RemoteWrite> remote;
  EXPECT_FALSE(t.step(0, 0, LinkState::kNone, remote));
  EXPECT_FALSE(t.step(0, 4, LinkState::kNone, remote));
  EXPECT_TRUE(t.step(0, 5, LinkState::kNone, remote));
  EXPECT_EQ(t.stats().cycles_stalled, 2);
}

TEST(Tile, LoadLeavesTileHaltedUntilRestart) {
  auto r = assemble("  halt\n");
  ASSERT_TRUE(r.ok());
  Tile t;
  ASSERT_TRUE(t.load_program(r.program));
  EXPECT_TRUE(t.halted());
  t.restart();
  EXPECT_FALSE(t.halted());
}

TEST(Tile, ProgramTooLargeRejected) {
  isa::Program prog;
  prog.code.resize(cgra::kInstMemWords + 1);
  Tile t;
  EXPECT_FALSE(t.load_program(prog));
}

TEST(Tile, BadPatchRejectedAtomically) {
  Tile t;
  const std::vector<isa::DataPatch> patches = {{5, 1}, {9999, 2}};
  EXPECT_FALSE(t.patch_data(patches));
  EXPECT_EQ(t.dmem(5), 0u);  // nothing applied
}

TEST(Tile, MacAccumulatorOps) {
  const Tile t = run_tile(
      "  movi 0, #3\n  movi 1, #4\n  movi 2, #-5\n"
      "  macz 0, 1\n"     // acc = 12
      "  mac 0, 2\n"      // acc = 12 - 15 = -3
      "  mac 1, #10\n"    // acc = -3 + 40 = 37
      "  macr 5\n"
      "  macz 0, #0\n"    // acc cleared
      "  macr 6\n"
      "  halt\n");
  EXPECT_EQ(signed_dmem(t, 5), 37);
  EXPECT_EQ(signed_dmem(t, 6), 0);
}

TEST(Tile, MacDotProductLoop) {
  // 5-instruction MAC loop: dot product of [1..8] with itself = 204.
  const Tile t = run_tile(
      ".data 0, 1, 2, 3, 4, 5, 6, 7, 8\n"
      "  movi 20, #0\n"   // pa
      "  movi 21, #8\n"   // cnt
      "  macz 20, #0\n"   // clear acc
      "loop:\n"
      "  mac 20*, 20*\n"
      "  add 20, 20, #1\n"
      "  sub 21, 21, #1\n"
      "  bnez 21, loop\n"
      "  macr 22\n"
      "  halt\n");
  EXPECT_EQ(signed_dmem(t, 22), 204);
}

TEST(Tile, InstructionCounterAdvances) {
  const Tile t = run_tile("  movi 0, #1\n  movi 1, #2\n  halt\n");
  EXPECT_EQ(t.stats().instructions, 3);
}

}  // namespace
}  // namespace cgra::fabric

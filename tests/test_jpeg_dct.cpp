// DCT tests: float DCT correctness, fixed-point agreement, inverse.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/jpeg/dct.hpp"
#include "common/prng.hpp"

namespace cgra::jpeg {
namespace {

IntBlock random_block(std::uint64_t seed) {
  SplitMix64 rng(seed);
  IntBlock b{};
  for (auto& v : b) v = static_cast<int>(rng.next_below(256)) - 128;
  return b;
}

TEST(Dct, FlatBlockHasOnlyDc) {
  IntBlock b{};
  b.fill(100);
  const auto f = fdct_float(b);
  EXPECT_NEAR(f[0], 800.0, 1e-9);  // 8 * mean
  for (std::size_t i = 1; i < 64; ++i) EXPECT_NEAR(f[i], 0.0, 1e-9);
}

TEST(Dct, InverseRecoversFloat) {
  const auto b = random_block(11);
  const auto f = fdct_float(b);
  const auto back = idct_float(f);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(back[i], static_cast<double>(b[i]), 1e-9) << i;
  }
}

TEST(Dct, BasisIsOrthonormalScaled) {
  // DC basis row: all entries 2^12 * 0.5 * sqrt(0.5) ~ 1448.
  const auto& c = dct_basis_q12();
  for (int x = 0; x < 8; ++x) {
    EXPECT_EQ(c[static_cast<std::size_t>(x)],
              static_cast<std::int32_t>(
                  std::lround(0.5 * std::sqrt(0.5) * 4096)));
  }
}

class FixedVsFloat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedVsFloat, AgreesWithinTwoUnits) {
  const auto b = random_block(GetParam());
  const auto exact = fdct_float(b);
  const auto fixed = fdct_fixed(b);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(static_cast<double>(fixed[i]), exact[i], 2.0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedVsFloat,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Dct, FixedDcTermExact) {
  IntBlock b{};
  b.fill(64);
  const auto fixed = fdct_fixed(b);
  EXPECT_NEAR(static_cast<double>(fixed[0]), 512.0, 1.0);
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_NEAR(static_cast<double>(fixed[i]), 0.0, 1.0);
  }
}

TEST(Dct, RangeStaysWithinCoefficientBudget) {
  // Worst-case +-128 inputs keep |coef| <= 1024 (8 * 128): no 48-bit issues
  // on the fabric and no int overflow here.
  IntBlock extreme{};
  for (int i = 0; i < 64; ++i) extreme[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 127 : -128;
  const auto fixed = fdct_fixed(extreme);
  for (const int v : fixed) {
    EXPECT_LE(std::abs(v), 1100);
  }
}

}  // namespace
}  // namespace cgra::jpeg

// Cross-module integration tests: full flows the paper's methodology
// depends on, exercised end to end.
#include <gtest/gtest.h>

#include <map>

#include "apps/fft/fabric_fft.hpp"
#include "apps/jpeg/decoder.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/process_table.hpp"
#include "common/prng.hpp"
#include "dse/fft_perf_model.hpp"
#include "mapping/rebalance.hpp"

namespace cgra {
namespace {

TEST(Integration, FabricBlocksProduceDecodableJpeg) {
  // Encode a small image where every block's transform path runs on the
  // cycle simulator; only the entropy stage is host-side.  The resulting
  // stream must decode with reasonable PSNR.
  const auto img = jpeg::synthetic_image(24, 16, 77);
  const auto quant = jpeg::scaled_quant(60);
  const auto dc = jpeg::build_encoder(jpeg::dc_luminance_spec());
  const auto ac = jpeg::build_encoder(jpeg::ac_luminance_spec());

  // Reuse encode_image's header layout by swapping in fabric block outputs:
  // encode each block on the fabric and Huffman-pack on the host.
  jpeg::BitWriter bw;
  int pred = 0;
  for (int by = 0; by < 2; ++by) {
    for (int bx = 0; bx < 3; ++bx) {
      const auto raw = jpeg::extract_block(img, bx, by);
      const auto fab = jpeg::encode_block_on_fabric(raw, quant);
      ASSERT_TRUE(fab.ok());
      pred = jpeg::huffman_encode_block(fab.zigzagged, pred, bw, dc, ac);
    }
  }
  EXPECT_GT(bw.bit_count(), 0u);

  // The fabric path equals the host path bit for bit, so the full host
  // stream stands in for the fabric stream; decode and check quality.
  const auto bytes = jpeg::encode_image(img, 60);
  const auto decoded = jpeg::decode_image(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_GT(jpeg::psnr(img, decoded.image), 28.0);
}

TEST(Integration, FullJpegBlockPathOnFabric) {
  // Transform pipeline (4 tiles) feeds the entropy tile: every stage of a
  // JPEG block — shift, DCT, quantise, zigzag, Huffman — executes as tile
  // assembly, and the resulting bit string matches the host encoder's.
  SplitMix64 rng(0xFAB);
  const auto quant = jpeg::scaled_quant(50);
  int prev_dc = 0;
  for (int round = 0; round < 3; ++round) {
    jpeg::IntBlock raw{};
    for (auto& px : raw) px = static_cast<int>(rng.next_below(256));
    const auto transform = jpeg::encode_block_on_fabric(raw, quant);
    ASSERT_TRUE(transform.ok());
    const auto entropy =
        jpeg::encode_entropy_on_fabric(transform.zigzagged, prev_dc);
    ASSERT_TRUE(entropy.ok());

    // Host golden model for the same block and predictor.
    jpeg::BitWriter bw;
    const auto dc = jpeg::build_encoder(jpeg::dc_luminance_spec());
    const auto ac = jpeg::build_encoder(jpeg::ac_luminance_spec());
    const auto zz = jpeg::encode_block_stages(raw, quant);
    jpeg::huffman_encode_block(zz, prev_dc, bw, dc, ac);
    EXPECT_EQ(entropy.bits.size(), bw.bit_count()) << round;
    prev_dc = zz[0];
  }
}

TEST(Integration, MeasuredFftTimesReproduceFigure10Ordering) {
  // Full methodology for a laptop-sized geometry: measure kernels on the
  // simulator, feed the tau model, check the paper's qualitative results.
  const auto g = fft::make_geometry(256, 32);  // 8 stages, 8 rows
  const auto times = dse::measure_process_times(g);
  const auto cols = dse::usable_column_counts(g);
  ASSERT_EQ(cols, (std::vector<int>{1, 2, 4, 8}));

  std::map<int, double> cheap;
  std::map<int, double> dear;
  for (const int c : cols) {
    cheap[c] = dse::evaluate_fft_design(g, times, c, 0.0).throughput_per_sec();
    dear[c] =
        dse::evaluate_fft_design(g, times, c, 4000.0).throughput_per_sec();
  }
  // L = 0: monotone in column count.  L large: the widest design loses
  // its edge (Fig. 12's "opposite effect").
  EXPECT_GT(cheap[8], cheap[1]);
  EXPECT_GT(cheap[4], cheap[2]);
  EXPECT_LT(dear[8], dear[1]);
}

TEST(Integration, FabricFftTimelineConsistentWithModelDirection) {
  // Executed (cycle-accurate) reconfiguration cost must move in the same
  // direction as the analytic model when L changes.
  const auto g = fft::make_geometry(64, 8);
  std::vector<fft::Cplx> x(64, fft::Cplx{0.25, -0.125});
  fft::FabricFftOptions lo;
  lo.link_cost_ns = 0.0;
  fft::FabricFftOptions hi;
  hi.link_cost_ns = 2000.0;
  const auto rlo = fft::run_fabric_fft(g, x, lo);
  const auto rhi = fft::run_fabric_fft(g, x, hi);
  ASSERT_TRUE(rlo.ok());
  ASSERT_TRUE(rhi.ok());
  EXPECT_GT(rhi.timeline.reconfig_ns - rlo.timeline.reconfig_ns, 0.0);
}

TEST(Integration, RebalancersScaleJpegThroughputLikeFigure16) {
  // Fig. 16's qualitative shape on the real Table-3 network: throughput
  // climbs with tiles and the refined algorithms never lose to greedy.
  const auto net = jpeg::jpeg_split_pipeline();
  const mapping::CostParams params{};
  const auto one = mapping::sweep(net, 25, mapping::RebalanceAlgorithm::kOne,
                                  params);
  const auto two = mapping::sweep(net, 25, mapping::RebalanceAlgorithm::kTwo,
                                  params);
  ASSERT_EQ(one.size(), 25u);
  // Broad growth: 25 tiles deliver >= 5x the single-tile throughput.
  EXPECT_GT(one.back().eval.items_per_sec / one.front().eval.items_per_sec,
            5.0);
  // The three algorithms coincide at the extremes (paper Sec. 3.5.1).
  EXPECT_NEAR(one.front().eval.items_per_sec, two.front().eval.items_per_sec,
              1e-6);
  // Utilisation stays a valid average everywhere.
  for (const auto& pt : two) {
    EXPECT_GT(pt.eval.avg_utilization, 0.0);
    EXPECT_LE(pt.eval.avg_utilization, 1.0 + 1e-9);
  }
}

TEST(Integration, EquationOneTermsAllMaterialise) {
  // One fabric FFT run must exhibit all three Equation-1 ingredients:
  // epoch compute (A), link+ICAP reconfiguration (B) and the copy epochs (C,
  // visible as redistribution sub-epochs).
  const auto g = fft::make_geometry(32, 8);
  std::vector<fft::Cplx> x(32, fft::Cplx{0.5, 0.0});
  const auto r = fft::run_fabric_fft(g, x);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.timeline.epoch_compute_ns, 0.0);  // A
  EXPECT_GT(r.timeline.reconfig_ns, 0.0);       // B
  EXPECT_GT(r.redistribution_subepochs, 0);     // C
}

}  // namespace
}  // namespace cgra

// Tests pinning the paper's published timing constants.
#include <gtest/gtest.h>

#include "common/timing.hpp"

namespace cgra {
namespace {

TEST(Timing, InstructionTakes2500Picoseconds) {
  EXPECT_DOUBLE_EQ(kCycleNs, 2.5);
  EXPECT_DOUBLE_EQ(cycles_to_ns(4), 10.0);
}

TEST(Timing, IcapDataWordMatchesPaper) {
  // "reloading one location in data memory takes 33.33 ns"
  const IcapModel icap;
  EXPECT_NEAR(icap.ns_per_data_word(), 33.33, 0.01);
}

TEST(Timing, IcapInstructionWordIs50ns) {
  const IcapModel icap;
  EXPECT_NEAR(icap.ns_per_inst_word(), 50.0, 0.01);
}

TEST(Timing, BulkReloadScalesLinearly) {
  const IcapModel icap;
  EXPECT_NEAR(icap.data_reload_ns(512), 512 * icap.ns_per_data_word(), 1e-6);
  EXPECT_NEAR(icap.inst_reload_ns(0), 0.0, 1e-12);
}

TEST(Timing, MemoryGeometryMatchesReMorph) {
  EXPECT_EQ(kDataMemWords, 512);
  EXPECT_EQ(kInstMemWords, 512);
  EXPECT_EQ(kDataWordBits, 48);
  EXPECT_EQ(kInstWordBits, 72);
  EXPECT_EQ(kLinkWires, 48);
}

TEST(Timing, NsToCyclesRoundsUp) {
  EXPECT_EQ(ns_to_cycles_ceil(0.0), 0);
  EXPECT_EQ(ns_to_cycles_ceil(2.5), 1);
  EXPECT_EQ(ns_to_cycles_ceil(2.6), 2);
  EXPECT_EQ(ns_to_cycles_ceil(33.33), 14);
}

TEST(Timing, Table2CopyCostsReproduce) {
  // Table 2: reloading the 2 copy variables of the vcp processes of one
  // column (8 tiles x 2 words x 2 retargets) costs 1066.6 ns; the in-place
  // update costs 6 instructions (15 ns).
  const IcapModel icap;
  EXPECT_NEAR(icap.data_reload_ns(2 * 8 * 2), 1066.6, 1.0);
  EXPECT_NEAR(cycles_to_ns(6), 15.0, 1e-9);
}

}  // namespace
}  // namespace cgra

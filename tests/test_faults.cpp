// Fault injection, detection and recovery tests (docs/FAULTS.md).
//
// Everything here is deterministic: fault plans are PRNG-seeded scripts,
// so every run injects the same faults at the same cycles and the
// recovered outputs can be compared bit for bit with fault-free runs.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "apps/jpeg/fabric_jpeg.hpp"
#include "common/prng.hpp"
#include "fabric/fabric.hpp"
#include "faults/detector.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/recovery.hpp"
#include "isa/assembler.hpp"

namespace cgra::faults {
namespace {

jpeg::IntBlock random_pixels(std::uint64_t seed) {
  SplitMix64 rng(seed);
  jpeg::IntBlock b{};
  for (auto& v : b) v = static_cast<int>(rng.next_below(256));
  return b;
}

// ---------------------------------------------------------------- plans --

TEST(FaultPlan, BuildersScheduleEvents) {
  FaultPlan plan;
  plan.flip_dmem_bit(10, 1, 5, 3)
      .flip_inst_bit(20, 2)
      .corrupt_icap(3, 2)
      .fail_link(30, 4)
      .kill_tile(40, 5);
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].action, FaultAction::kFlipDmemBit);
  EXPECT_EQ(plan.events[0].addr, 5);
  EXPECT_EQ(plan.events[0].bit, 3);
  EXPECT_EQ(plan.events[2].count, 2);
  EXPECT_EQ(plan.events[4].action, FaultAction::kKillTile);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RandomSeusAreDeterministicAndSorted) {
  const auto a = FaultPlan::random_seus(42, 8, 10'000, 32, 0.5);
  const auto b = FaultPlan::random_seus(42, 8, 10'000, 32, 0.5);
  const auto c = FaultPlan::random_seus(43, 8, 10'000, 32, 0.5);
  ASSERT_EQ(a.events.size(), 32u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].cycle, b.events[i].cycle);
    EXPECT_EQ(a.events[i].tile, b.events[i].tile);
    EXPECT_EQ(a.events[i].action, b.events[i].action);
    EXPECT_GE(a.events[i].tile, 0);
    EXPECT_LT(a.events[i].tile, 8);
    EXPECT_GE(a.events[i].cycle, 0);
    EXPECT_LT(a.events[i].cycle, 10'000);
    if (i > 0) {
      EXPECT_LE(a.events[i - 1].cycle, a.events[i].cycle);
    }
  }
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    differs = differs || a.events[i].cycle != c.events[i].cycle ||
              a.events[i].tile != c.events[i].tile;
  }
  EXPECT_TRUE(differs) << "different seeds must give different showers";
}

// ------------------------------------------------------------- injector --

TEST(Injector, FiresScheduledSeuExactlyOnce) {
  fabric::Fabric fab(1, 2);
  FaultPlan plan;
  plan.flip_dmem_bit(5, 1, 7, 2);
  FaultInjector inj(plan);
  ASSERT_TRUE(inj.next_cycle().has_value());
  EXPECT_EQ(*inj.next_cycle(), 5);

  // Not due yet at cycle 0.
  EXPECT_EQ(inj.fire_due(fab), 0);
  while (fab.now() < 5) fab.step();
  EXPECT_EQ(inj.fire_due(fab), 1);
  EXPECT_EQ(fab.tile(1).dmem(7), Word{1} << 2);
  EXPECT_FALSE(inj.next_cycle().has_value());
  EXPECT_EQ(inj.fire_due(fab), 0) << "events fire once";
  EXPECT_EQ(inj.pending(), 0);
}

TEST(Injector, RandomTargetsAreDeterministicAcrossRuns) {
  FaultPlan plan;
  plan.seed = 99;
  plan.flip_dmem_bit(0, 0);  // addr/bit chosen by the plan's PRNG
  plan.flip_dmem_bit(0, 1);

  fabric::Fabric fab_a(1, 2);
  fabric::Fabric fab_b(1, 2);
  FaultInjector inj_a(plan);
  FaultInjector inj_b(plan);
  EXPECT_EQ(inj_a.fire_due(fab_a), 2);
  EXPECT_EQ(inj_b.fire_due(fab_b), 2);
  for (int t = 0; t < 2; ++t) {
    bool flipped_somewhere = false;
    for (int addr = 0; addr < kDataMemWords; ++addr) {
      EXPECT_EQ(fab_a.tile(t).dmem(addr), fab_b.tile(t).dmem(addr));
      flipped_somewhere = flipped_somewhere || fab_a.tile(t).dmem(addr) != 0;
    }
    EXPECT_TRUE(flipped_somewhere);
  }
}

TEST(Injector, KillAndLinkEventsReachTheFabric) {
  fabric::Fabric fab(1, 3);
  FaultPlan plan;
  plan.kill_tile(0, 1).fail_link(0, 2);
  FaultInjector inj(plan);
  EXPECT_EQ(inj.fire_due(fab), 2);
  EXPECT_TRUE(fab.tile(1).dead());
  EXPECT_TRUE(fab.link_failed(2));
  EXPECT_EQ(fab.tile(1).fault().kind, FaultKind::kTileDead);
}

// ------------------------------------------------------------- detector --

TEST(Detector, ChecksumsLocaliseSeus) {
  fabric::Fabric fab(2, 2);
  const auto before = snapshot_checksums(fab);
  EXPECT_TRUE(changed_tiles(before, snapshot_checksums(fab)).empty());

  fab.tile(2).flip_dmem_bit(100, 17);
  const auto after = snapshot_checksums(fab);
  EXPECT_EQ(changed_tiles(before, after), (std::vector<int>{2}));
}

TEST(Detector, ImemChecksumSeesInstructionSeus) {
  const auto assembled = isa::assemble("  movi 0, #1\n  halt\n");
  ASSERT_TRUE(assembled.ok()) << assembled.status.message();
  fabric::Fabric fab(1, 2);
  ASSERT_TRUE(fab.tile(0).load_program(assembled.program));
  const auto before = snapshot_checksums(fab);
  ASSERT_TRUE(fab.tile(0).flip_inst_bit(0, 3));
  const auto after = snapshot_checksums(fab);
  EXPECT_EQ(changed_tiles(before, after), (std::vector<int>{0}));
}

TEST(Detector, WatchdogBudgetScalesPredictionWithFloor) {
  EpochWatchdog wd;
  wd.margin = 4.0;
  wd.min_budget_cycles = 4096;
  EXPECT_EQ(wd.budget_cycles(0), 4096);        // floor
  EXPECT_EQ(wd.budget_cycles(100), 4096);      // still under the floor
  EXPECT_EQ(wd.budget_cycles(10'000), 40'000); // margin * prediction
}

// ----------------------------------------------- end-to-end recovery ----

/// Sum of the explicit retry costs across all transitions of a timeline.
Nanoseconds total_retry_ns(const config::Timeline& tl) {
  Nanoseconds total = 0.0;
  for (const auto& t : tl.transitions) total += t.retry_ns;
  return total;
}

TEST(Recovery, ZeroFaultRunMatchesHostReference) {
  const auto raw = random_pixels(11);
  const auto quant = jpeg::scaled_quant(50);
  const auto res = jpeg::encode_block_resilient(raw, quant, FaultPlan{});
  ASSERT_TRUE(res.report.ok) << res.report.status.message();
  EXPECT_EQ(res.zigzagged, jpeg::encode_block_stages(raw, quant));
  EXPECT_EQ(res.report.rollbacks, 0);
  EXPECT_EQ(res.report.rebalances, 0);
  EXPECT_EQ(res.report.icap_retries, 0);
  EXPECT_EQ(total_retry_ns(res.report.timeline), 0.0);
}

TEST(Recovery, IcapCorruptionRecoversWithinRetryBound) {
  const auto raw = random_pixels(12);
  const auto quant = jpeg::scaled_quant(50);

  FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_icap(/*tile=*/1, /*times=*/2);  // DCT tile, first two streams
  RecoveryPolicy policy;  // max_icap_retries = 3 > 2: must recover in-stream
  const auto res = jpeg::encode_block_resilient(raw, quant, plan, policy);

  ASSERT_TRUE(res.report.ok) << res.report.status.message();
  EXPECT_EQ(res.zigzagged, jpeg::encode_block_stages(raw, quant));
  EXPECT_EQ(res.report.icap_retries, 2);
  EXPECT_EQ(res.report.rollbacks, 0) << "in-stream retry, no rollback";

  // The retry cost is real and lands in Timeline.reconfig_ns.
  const Nanoseconds retry = total_retry_ns(res.report.timeline);
  EXPECT_GT(retry, 0.0);
  const auto clean = jpeg::encode_block_resilient(raw, quant, FaultPlan{});
  EXPECT_GT(res.report.timeline.reconfig_ns,
            clean.report.timeline.reconfig_ns);
  EXPECT_GE(res.report.timeline.reconfig_ns, retry);
}

TEST(Recovery, IcapCorruptionBeyondAllBudgetsGivesUp) {
  const auto raw = random_pixels(13);
  const auto quant = jpeg::scaled_quant(50);

  FaultPlan plan;
  plan.corrupt_icap(/*tile=*/1, /*times=*/1000);  // outlasts every retry
  const auto res = jpeg::encode_block_resilient(raw, quant, plan);

  EXPECT_FALSE(res.report.ok);
  ASSERT_FALSE(res.report.unrecovered.empty()) << res.report.status.message();
  EXPECT_EQ(res.report.unrecovered.front().kind, FaultKind::kIcapCorruption);
  EXPECT_EQ(res.report.rollbacks,
            RecoveryPolicy{}.max_retries_per_checkpoint);
}

TEST(Recovery, HardTileFaultMidRunRebalancesBitIdentical) {
  // The acceptance scenario: a fixed-seed plan hard-fails the DCT tile
  // mid-run on the 13-tile mesh.  Recovery must evacuate it, rebalance
  // the pipeline onto the survivors, replay from the checkpoint, and the
  // encoder output must be bit-identical to the fault-free run.
  const auto raw = random_pixels(14);
  const auto quant = jpeg::scaled_quant(50);
  const auto clean = jpeg::encode_block_resilient(raw, quant, FaultPlan{});
  ASSERT_TRUE(clean.report.ok);

  FaultPlan plan;
  plan.seed = 0xDEAD;
  plan.kill_tile(/*cycle=*/50, /*tile=*/1);
  const auto res = jpeg::encode_block_resilient(raw, quant, plan);

  ASSERT_TRUE(res.report.ok) << res.report.status.message();
  EXPECT_EQ(res.zigzagged, clean.zigzagged);
  EXPECT_EQ(res.zigzagged, jpeg::encode_block_stages(raw, quant));
  EXPECT_EQ(res.report.rebalances, 1);
  EXPECT_EQ(res.report.evacuated_tiles, (std::vector<int>{1}));
  EXPECT_EQ(res.report.faults_injected, 1);
  // Degraded-mode cost is quantified, not hidden.
  EXPECT_GT(res.report.timeline.reconfig_ns,
            clean.report.timeline.reconfig_ns);
}

TEST(Recovery, ImemScrubCatchesSilentInstructionSeus) {
  // An imem SEU whose flipped word still decodes to a valid instruction
  // raises no architectural fault — executed, it just computes garbage.
  // The per-epoch imem fingerprint diff (RecoveryPolicy::scrub_imem) must
  // catch it anyway, and the scrub + rollback replay must stay bit-exact.
  // Several seeds so both detector paths (architectural fault and
  // fingerprint diff) get exercised.
  const auto raw = random_pixels(16);
  const auto quant = jpeg::scaled_quant(50);
  const auto golden = jpeg::encode_block_stages(raw, quant);
  int scrub_hits = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.flip_inst_bit(/*cycle=*/4000, /*tile=*/1);
    const auto res = jpeg::encode_block_resilient(raw, quant, plan);
    ASSERT_TRUE(res.report.ok)
        << "seed " << seed << ": " << res.report.status.message();
    EXPECT_EQ(res.zigzagged, golden) << "seed " << seed;
    scrub_hits += res.report.scrub_detections;
  }
  EXPECT_GT(scrub_hits, 0);
}

TEST(Recovery, RecoveredRunsAreDeterministic) {
  const auto raw = random_pixels(15);
  const auto quant = jpeg::scaled_quant(75);
  FaultPlan plan;
  plan.seed = 21;
  plan.kill_tile(60, 2).corrupt_icap(1, 1);

  const auto a = jpeg::encode_block_resilient(raw, quant, plan);
  const auto b = jpeg::encode_block_resilient(raw, quant, plan);
  ASSERT_TRUE(a.report.ok) << a.report.status.message();
  ASSERT_TRUE(b.report.ok);
  EXPECT_EQ(a.zigzagged, b.zigzagged);
  EXPECT_EQ(a.report.rebalances, b.report.rebalances);
  EXPECT_EQ(a.report.rollbacks, b.report.rollbacks);
  EXPECT_EQ(a.report.icap_retries, b.report.icap_retries);
  EXPECT_EQ(a.report.timeline.reconfig_ns, b.report.timeline.reconfig_ns);
  EXPECT_EQ(a.zigzagged, jpeg::encode_block_stages(raw, quant));
}

TEST(Recovery, WatchdogConvertsHangIntoBoundedRetries) {
  // A process whose program spins forever: the analytic prediction says
  // 16 cycles, so the watchdog fires, recovery scrubs and replays, and
  // after the retry budget the run gives up with kWatchdogTimeout.
  procnet::ProcessNetwork net;
  procnet::Process spin;
  spin.name = "spin";
  spin.runtime_cycles = 16;
  net.add_process(spin);

  const auto assembled = isa::assemble("spin:\n  jmp spin\n");
  ASSERT_TRUE(assembled.ok()) << assembled.status.message();
  mapping::ProgramLibrary lib;
  mapping::CompiledProcess impl;
  impl.program = assembled.program;
  impl.in_base = 0;
  impl.out_base = 0;
  impl.words = 4;
  lib[0] = impl;

  mapping::Binding binding;
  binding.groups = {{{0}, 1}};
  const auto placement =
      mapping::place(binding, 1, 2, mapping::PlacementStrategy::kSnake);

  fabric::Fabric fab(1, 2);
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  RecoveryPolicy policy;
  policy.watchdog.min_budget_cycles = 64;  // keep the hang cheap
  RecoveryManager manager(fab, ctrl, nullptr, policy);

  const std::vector<Word> input(4, 0);
  const auto rep = manager.run_item(net, binding, placement, lib, input);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.rollbacks, policy.max_retries_per_checkpoint);
  ASSERT_FALSE(rep.unrecovered.empty());
  EXPECT_EQ(rep.unrecovered.front().kind, FaultKind::kWatchdogTimeout);
  EXPECT_GT(rep.recovery_ns, 0.0) << "scrub and replay cost is accounted";
}

TEST(Recovery, TraceRecordsRecoveryActions) {
  // Drive the manager with an attached tracer and check kRecovery events.
  const auto quant = jpeg::scaled_quant(50);
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(quant);
  mapping::Binding binding;
  binding.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}, {{3}, 1}};
  const auto placement =
      mapping::place(binding, 2, 7, mapping::PlacementStrategy::kSnake);

  fabric::Fabric fab(2, 7);
  fabric::Tracer tracer(1 << 16);
  fab.attach_tracer(&tracer);
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  FaultPlan plan;
  plan.kill_tile(50, 1);
  FaultInjector injector(plan);
  RecoveryManager manager(fab, ctrl, &injector, RecoveryPolicy{});

  const auto raw = random_pixels(16);
  std::vector<Word> input;
  for (const int v : raw) input.push_back(from_signed(v));
  const auto rep = manager.run_item(net, binding, placement, lib, input);
  ASSERT_TRUE(rep.ok) << rep.status.message();

  int rebalance_events = 0;
  for (const auto& ev : tracer.events()) {
    if (ev.kind == fabric::TraceEventKind::kRecovery &&
        ev.action == fabric::RecoveryAction::kRebalance) {
      ++rebalance_events;
    }
  }
  EXPECT_EQ(rebalance_events, 1);
}

}  // namespace
}  // namespace cgra::faults

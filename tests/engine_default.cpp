// Linked into every test executable (tests/CMakeLists.txt): installs the
// build-configured default execution engine before main() runs, so a
// -DCGRA_DEFAULT_ENGINE=threaded build runs the WHOLE test suite on that
// engine — the in-situ half of the engines' bit-identity contract.  In the
// default build ("interp") this is a no-op.
#include "engine/engine.hpp"

namespace {

[[maybe_unused]] const bool g_build_default_engine_installed = [] {
  cgra::engine::install_build_default();
  return true;
}();

}  // namespace

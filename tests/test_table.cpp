// Tests for the text-table renderer used by the bench harnesses.
#include <gtest/gtest.h>

#include "common/table.hpp"

namespace cgra {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // All lines share the same prefix width for column 2.
  const auto first_line_end = out.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::integer(-42), "-42");
}

}  // namespace
}  // namespace cgra

// FFT partition geometry tests (Sec. 3.1's M/N arithmetic).
#include <gtest/gtest.h>

#include "apps/fft/partition.hpp"

namespace cgra::fft {
namespace {

TEST(Partition, ReMorphMemoryGivesM128) {
  // "for the specific case of reMORPH where DM=512, M turns out to be 128"
  EXPECT_EQ(max_partition_size(512), 128);
}

TEST(Partition, SmallerMemoriesShrinkM) {
  EXPECT_EQ(max_partition_size(256), 64);
  EXPECT_EQ(max_partition_size(128), 16);
}

TEST(Partition, Geometry1024) {
  const auto g = make_geometry(1024);
  EXPECT_EQ(g.m, 128);
  EXPECT_EQ(g.stages, 10);
  EXPECT_EQ(g.rows, 8);
  EXPECT_EQ(g.cross_stages(), 3);
  // "a 1024-point Radix2 FFT implementation needs at least 8 and at most
  //  80 tiles"
  EXPECT_EQ(g.min_tiles(), 8);
  EXPECT_EQ(g.max_tiles(), 80);
}

TEST(Partition, TwiddleColumnMatchesTable1) {
  // Table 1: BF0..BF9 need 128,128,128,64,32,16,8,4,2,1 twiddles.
  const auto g = make_geometry(1024);
  const int expected[10] = {128, 128, 128, 64, 32, 16, 8, 4, 2, 1};
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(g.twiddles_for_stage(s), expected[s]) << "stage " << s;
  }
}

TEST(Partition, HalfSpanHalvesEachStage) {
  const auto g = make_geometry(64, 8);
  EXPECT_EQ(g.half_span(0), 32);
  EXPECT_EQ(g.half_span(1), 16);
  EXPECT_EQ(g.half_span(5), 1);
}

TEST(Partition, TwiddleExponentsMatchFigure8) {
  // 64-point, M=8 (Fig. 8): row 0 stage 0 holds w0..w3; stage 1 holds
  // w0,w2,w4,w6; row 1 stage 1 holds w8,w10,w12,w14.
  const auto g = make_geometry(64, 8);
  EXPECT_EQ(g.twiddle_exponents(0, 0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g.twiddle_exponents(0, 1), (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(g.twiddle_exponents(1, 1), (std::vector<int>{8, 10, 12, 14}));
  // Row 4 wraps: stage 1 needs w0,w2,w4,w6 again.
  EXPECT_EQ(g.twiddle_exponents(4, 1), (std::vector<int>{0, 2, 4, 6}));
}

TEST(Partition, LateStagesNeedFewDistinctExponents) {
  const auto g = make_geometry(64, 8);
  // Final stage: single twiddle w0 everywhere.
  for (int r = 0; r < g.rows; ++r) {
    EXPECT_EQ(g.twiddle_exponents(r, 5), (std::vector<int>{0}));
  }
}

TEST(Partition, InvalidGeometriesRejected) {
  EXPECT_THROW(make_geometry(1000), std::invalid_argument);      // not 2^k
  EXPECT_THROW(make_geometry(64, 128), std::invalid_argument);   // M > N
  EXPECT_THROW(make_geometry(64, 6), std::invalid_argument);     // M not 2^k
}

TEST(Partition, DefaultsMToMemoryBound) {
  const auto g = make_geometry(64);
  EXPECT_EQ(g.m, 64);  // min(N, 128)
  EXPECT_EQ(g.rows, 1);
}

}  // namespace
}  // namespace cgra::fft

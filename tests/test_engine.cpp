// Execution-engine conformance: every engine (interpreter, threaded
// superinstruction dispatch, lockstep SoA batch) must be bit-identical to
// the reference interpreter — same cycle counts, TileStats, fault records,
// data memories, trace event streams and remote-write commit order.
//
// Structure: a library of workloads exercising every scheduler and fault
// path runs once per engine on a fresh fabric and the complete observable
// state is compared field-for-field against the interpreter's; a
// randomized differential fuzzer then sweeps 64 programs with arbitrary
// flag/operand mixes across all three engines at once.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cgra/engine.hpp"
#include "common/prng.hpp"
#include "isa/assembler.hpp"
#include "obs/metrics.hpp"

namespace cgra::engine {
namespace {

using fabric::Fabric;
using fabric::RunResult;
using fabric::Tracer;
using interconnect::Direction;

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

constexpr EngineKind kEngines[] = {EngineKind::kInterp, EngineKind::kThreaded,
                                   EngineKind::kBatch};

void attach(Fabric& f, EngineKind kind) {
  f.adopt_engine(make_engine(EngineOptions{kind, 4, 0}));
}

/// Full observable-state comparison: `got` (some engine) vs `want` (the
/// reference interpreter).
void expect_same_state(const Fabric& got, const Fabric& want,
                       const std::string& ctx) {
  ASSERT_EQ(got.tile_count(), want.tile_count()) << ctx;
  EXPECT_EQ(got.now(), want.now()) << ctx;
  EXPECT_EQ(got.all_halted(), want.all_halted()) << ctx;
  for (int t = 0; t < want.tile_count(); ++t) {
    const auto& g = got.tile(t);
    const auto& w = want.tile(t);
    const std::string tc = ctx + " tile " + std::to_string(t);
    EXPECT_EQ(g.pc(), w.pc()) << tc;
    EXPECT_EQ(g.halted(), w.halted()) << tc;
    EXPECT_EQ(g.faulted(), w.faulted()) << tc;
    EXPECT_EQ(g.fault().kind, w.fault().kind) << tc;
    EXPECT_EQ(g.fault().tile, w.fault().tile) << tc;
    EXPECT_EQ(g.fault().pc, w.fault().pc) << tc;
    EXPECT_EQ(g.fault().cycle, w.fault().cycle) << tc;
    EXPECT_EQ(g.stats().instructions, w.stats().instructions) << tc;
    EXPECT_EQ(g.stats().remote_writes, w.stats().remote_writes) << tc;
    EXPECT_EQ(g.stats().cycles_stalled, w.stats().cycles_stalled) << tc;
    EXPECT_EQ(g.stats().cycles_halted, w.stats().cycles_halted) << tc;
    for (int a = 0; a < kDataMemWords; ++a) {
      ASSERT_EQ(g.dmem(a), w.dmem(a)) << tc << " dmem " << a;
    }
  }
}

void expect_same_result(const RunResult& got, const RunResult& want,
                        const std::string& ctx) {
  EXPECT_EQ(got.cycles, want.cycles) << ctx;
  EXPECT_EQ(got.all_halted, want.all_halted) << ctx;
  ASSERT_EQ(got.faults.size(), want.faults.size()) << ctx;
  for (std::size_t i = 0; i < want.faults.size(); ++i) {
    EXPECT_EQ(got.faults[i].kind, want.faults[i].kind) << ctx << " #" << i;
    EXPECT_EQ(got.faults[i].tile, want.faults[i].tile) << ctx << " #" << i;
    EXPECT_EQ(got.faults[i].pc, want.faults[i].pc) << ctx << " #" << i;
    EXPECT_EQ(got.faults[i].cycle, want.faults[i].cycle) << ctx << " #" << i;
  }
}

/// The cycle-accounting invariant every engine must preserve.
void expect_stats_invariant(const Fabric& f, const std::string& ctx) {
  for (int t = 0; t < f.tile_count(); ++t) {
    const auto& s = f.tile(t).stats();
    EXPECT_EQ(s.instructions + s.cycles_stalled + s.cycles_halted, f.now())
        << ctx << " tile " << t;
  }
}

// --- workload library -------------------------------------------------------

struct Workload {
  const char* name;
  int rows;
  int cols;
  void (*setup)(Fabric&);
  std::int64_t max_cycles;
};

void wl_halt(Fabric& f) {
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(3).load_program(prog("  movi 0, #2\n  nop\n  nop\n  halt\n"));
  f.tile(0).restart();
  f.tile(3).restart();
}

void wl_halt_1x2(Fabric& f) {
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(1).load_program(prog("  movi 0, #2\n  nop\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
}

void wl_stall_fast_forward(Fabric& f) {
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(1).load_program(prog("  movi 0, #2\n  nop\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
  f.tile(0).stall_until(100);
  f.tile(1).stall_until(200);
}

void wl_stall_past_budget(Fabric& f) {
  f.tile(0).load_program(prog("  movi 0, #1\n  halt\n"));
  f.tile(0).restart();
  f.tile(0).stall_until(1'000'000);
}

void wl_remote_tiebreak(Fabric& f) {
  f.links().set_output(0, Direction::kEast);
  f.links().set_output(2, Direction::kWest);
  f.tile(0).load_program(prog("  movi 0, #111\n  mov !5, 0\n  halt\n"));
  f.tile(2).load_program(prog("  movi 0, #222\n  mov !5, 0\n  halt\n"));
  f.tile(0).restart();
  f.tile(2).restart();
}

void wl_pipeline(Fabric& f) {
  f.links().set_output(0, Direction::kEast);
  f.links().set_output(1, Direction::kEast);
  f.tile(0).load_program(prog("  movi 0, #21\n  mov !0, 0\n  halt\n"));
  f.tile(1).load_program(
      prog("wait:\n  beqz 0, wait\n  add 1, 0, 0\n  mov !0, 1\n  halt\n"));
  f.tile(0).restart();
  f.tile(1).restart();
}

void wl_branch_loop(Fabric& f) {
  // A long countdown: the threaded engine's lone-runner burst path with a
  // branchy block, plus mac-family accumulator traffic.
  f.tile(0).load_program(prog(
      "  movi 1, #2000\n  movi 2, #0\n"
      "loop:\n"
      "  add 2, 2, 1\n  macz 2, #3\n  mac 2, #1\n  macr 3\n"
      "  sub 1, 1, #1\n  bnez 1, loop\n"
      "  halt\n"));
  f.tile(0).restart();
}

void wl_pure_straightline(Fabric& f) {
  // A block of pure instructions (burst fast path) ending in a halt.
  std::string body = "  movi 0, #7\n";
  for (int i = 1; i < 60; ++i) {
    body += "  add " + std::to_string(i % 32) + ", " +
            std::to_string((i - 1) % 32) + ", #" + std::to_string(i) + "\n";
  }
  f.tile(0).load_program(prog(body + "  halt\n"));
  f.tile(0).restart();
}

void wl_no_link_fault(Fabric& f) {
  f.tile(0).load_program(prog("  nop\n  mov !0, 0\n  halt\n"));
  f.tile(0).restart();
}

void wl_link_down_fault(Fabric& f) {
  f.links().set_output(0, Direction::kEast);
  f.fail_link(0);
  f.tile(0).load_program(prog("  movi 0, #5\n  mov !3, 0\n  halt\n"));
  f.tile(0).restart();
}

void wl_addr_oob_fault(Fabric& f) {
  f.tile(0).load_program(prog("  mov 600, 0\n  halt\n"));
  f.tile(0).restart();
}

void wl_indirect(Fabric& f) {
  // Pointer chase: dmem[1] = 40, dmem[40] = 9; mov 2, 1* reads dmem[40].
  f.tile(0).load_program(prog(
      "  .data 1, 40\n  .data 40, 9\n"
      "  mov 2, 1*\n  movi 3, #50\n  mov 3*, 2\n  halt\n"));
  f.tile(0).restart();
}

void wl_indirect_oob_fault(Fabric& f) {
  // The pointer VALUE is out of range: dynamic kAddressOutOfRange.
  f.tile(0).load_program(prog("  .data 1, 4000\n  mov 2, 1*\n  halt\n"));
  f.tile(0).restart();
}

void wl_pc_off_end(Fabric& f) {
  // No halt: running off the image raises kPcOutOfRange.
  f.tile(0).load_program(prog("  movi 0, #1\n  nop\n"));
  f.tile(0).restart();
}

void wl_jmp_oob(Fabric& f) {
  f.tile(0).load_program(prog("  jmp 900\n"));
  f.tile(0).restart();
}

void wl_illegal_poison(Fabric& f) {
  f.tile(0).load_program(prog("  nop\n  nop\n  halt\n"));
  // Poison instruction 1's opcode field (deterministic upset).
  f.tile(0).flip_inst_bit(1, 70);
  f.tile(0).restart();
}

void wl_dense_mesh(Fabric& f) {
  // Every tile busy, neighbours exchanging data: the general multi-tile
  // sweep (and the batch engine's vector path across a full mesh).
  for (int t = 0; t < f.tile_count(); ++t) {
    if (t % 2 == 0 && t + 1 < f.tile_count()) {
      f.links().set_output(t, Direction::kEast);
    }
    f.tile(t).load_program(prog(
        "  movi 1, #" + std::to_string(40 + t) +
        "\n  movi 2, #0\n"
        "loop:\n"
        "  add 2, 2, 1\n  sub 1, 1, #1\n  bnez 1, loop\n" +
        std::string(t % 2 == 0 ? "  mov !9, 2\n" : "  mov 9, 2\n") +
        "  halt\n"));
    f.tile(t).restart();
  }
}

constexpr Workload kWorkloads[] = {
    {"halt", 2, 2, &wl_halt, 10'000},
    {"stall_fast_forward", 1, 2, &wl_stall_fast_forward, 10'000},
    {"stall_past_budget", 1, 1, &wl_stall_past_budget, 500},
    {"remote_tiebreak", 1, 3, &wl_remote_tiebreak, 10'000},
    {"pipeline", 1, 3, &wl_pipeline, 10'000},
    {"branch_loop", 1, 1, &wl_branch_loop, 50'000},
    {"pure_straightline", 1, 1, &wl_pure_straightline, 10'000},
    {"no_link_fault", 1, 2, &wl_no_link_fault, 10'000},
    {"link_down_fault", 1, 2, &wl_link_down_fault, 10'000},
    {"addr_oob_fault", 1, 1, &wl_addr_oob_fault, 10'000},
    {"indirect", 1, 1, &wl_indirect, 10'000},
    {"indirect_oob_fault", 1, 1, &wl_indirect_oob_fault, 10'000},
    {"pc_off_end", 1, 1, &wl_pc_off_end, 10'000},
    {"jmp_oob", 1, 1, &wl_jmp_oob, 10'000},
    {"illegal_poison", 1, 1, &wl_illegal_poison, 10'000},
    {"dense_mesh", 3, 3, &wl_dense_mesh, 50'000},
};

TEST(EngineConformance, WorkloadLibraryMatchesInterpreterBitForBit) {
  for (const auto& wl : kWorkloads) {
    Fabric ref(wl.rows, wl.cols);
    ref.attach_engine(nullptr);  // pin the interpreter
    wl.setup(ref);
    const auto want = ref.run(wl.max_cycles);
    expect_stats_invariant(ref, wl.name);

    for (const EngineKind kind : kEngines) {
      Fabric f(wl.rows, wl.cols);
      attach(f, kind);
      wl.setup(f);
      const auto got = f.run(wl.max_cycles);
      const std::string ctx =
          std::string(wl.name) + " on " + engine_name(kind);
      expect_same_result(got, want, ctx);
      expect_same_state(f, ref, ctx);
      expect_stats_invariant(f, ctx);
    }
  }
}

TEST(EngineConformance, MetricsCounterEndStatesMatch) {
  for (const EngineKind kind : kEngines) {
    obs::MetricsRegistry ref_metrics;
    Fabric ref(3, 3);
    ref.attach_engine(nullptr);
    ref.attach_metrics(&ref_metrics);
    wl_dense_mesh(ref);
    ref.run(50'000);

    obs::MetricsRegistry metrics;
    Fabric f(3, 3);
    attach(f, kind);
    f.attach_metrics(&metrics);
    wl_dense_mesh(f);
    f.run(50'000);

    for (const char* name : {"fabric.cycles", "fabric.retired",
                             "fabric.remote_writes", "fabric.faults"}) {
      EXPECT_EQ(metrics.counter_value(name), ref_metrics.counter_value(name))
          << name << " on " << engine_name(kind);
    }
  }
}

TEST(EngineConformance, TraceStreamsIdenticalIncludingWraparound) {
  // Small capacity forces ring wraparound; the full event sequence (and
  // the drop count) must match the interpreter's exactly.
  for (const auto& wl : kWorkloads) {
    Tracer want_trace(32);
    Fabric ref(wl.rows, wl.cols);
    ref.attach_engine(nullptr);
    ref.attach_tracer(&want_trace);
    wl.setup(ref);
    ref.run(wl.max_cycles);

    for (const EngineKind kind : kEngines) {
      Tracer got_trace(32);
      Fabric f(wl.rows, wl.cols);
      attach(f, kind);
      f.attach_tracer(&got_trace);
      wl.setup(f);
      f.run(wl.max_cycles);

      const std::string ctx =
          std::string(wl.name) + " on " + engine_name(kind);
      EXPECT_EQ(got_trace.dropped(), want_trace.dropped()) << ctx;
      ASSERT_EQ(got_trace.events().size(), want_trace.events().size()) << ctx;
      for (std::size_t i = 0; i < want_trace.events().size(); ++i) {
        const auto& g = got_trace.events()[i];
        const auto& w = want_trace.events()[i];
        const std::string ec = ctx + " event " + std::to_string(i);
        EXPECT_EQ(g.cycle, w.cycle) << ec;
        EXPECT_EQ(g.kind, w.kind) << ec;
        EXPECT_EQ(g.tile, w.tile) << ec;
        EXPECT_EQ(g.pc, w.pc) << ec;
        EXPECT_EQ(g.opcode, w.opcode) << ec;
        EXPECT_EQ(g.dst_tile, w.dst_tile) << ec;
        EXPECT_EQ(g.addr, w.addr) << ec;
        EXPECT_EQ(g.value, w.value) << ec;
      }
    }
  }
}

TEST(EngineConformance, KillRestartStepMixKeepsStatsInvariant) {
  for (const EngineKind kind : kEngines) {
    Fabric ref(2, 2);
    ref.attach_engine(nullptr);
    Fabric f(2, 2);
    attach(f, kind);
    for (Fabric* m : {&ref, &f}) {
      for (int t = 0; t < 4; ++t) {
        m->tile(t).load_program(prog("spin:\n  jmp spin\n"));
        m->tile(t).restart();
      }
      m->run(10);
      m->kill_tile(2);
      m->run(5);
      m->tile(0).stall_until(m->now() + 7);
      for (int i = 0; i < 3; ++i) m->step();
      m->tile(1).restart();
      m->run(4);
    }
    const std::string ctx = std::string("kill_restart on ") +
                            engine_name(kind);
    expect_same_state(f, ref, ctx);
    expect_stats_invariant(f, ctx);
    EXPECT_EQ(f.now(), 22) << ctx;
  }
}

TEST(EngineConformance, ResetReuseMatchesFreshFabric) {
  for (const EngineKind kind : kEngines) {
    // Fresh reference on the interpreter.
    Fabric ref(2, 2);
    ref.attach_engine(nullptr);
    wl_dense_mesh(ref);
    const auto want = ref.run(50'000);

    // Reused fabric on the engine: run something else first, reset, rerun.
    Fabric f(2, 2);
    attach(f, kind);
    wl_halt(f);
    f.run(1'000);
    f.kill_tile(1);
    f.reset();
    wl_dense_mesh(f);
    const auto got = f.run(50'000);

    const std::string ctx = std::string("reset_reuse on ") +
                            engine_name(kind);
    expect_same_result(got, want, ctx);
    expect_same_state(f, ref, ctx);
    EXPECT_NE(f.engine(), nullptr) << ctx << ": reset dropped the engine";
  }
}

// The hoisted link-refresh satellite: rewiring between step()/run() calls
// must be picked up identically by every engine (ExecAccess::begin is the
// one shared place the link cache re-derives).
TEST(EngineConformance, RewiringBetweenStepsIsPickedUpByAllEngines) {
  for (const EngineKind kind : kEngines) {
    Fabric ref(1, 3);
    ref.attach_engine(nullptr);
    Fabric f(1, 3);
    attach(f, kind);
    for (Fabric* m : {&ref, &f}) {
      m->links().set_output(1, Direction::kEast);
      m->tile(1).load_program(prog(
          "  .data 0, 7\n"
          "loop:\n  mov !5, 0\n  add 0, 0, #1\n  jmp loop\n"));
      m->tile(1).restart();
      m->step();  // writes 7 east (tile 2)
      m->links().set_output(1, Direction::kWest);
      m->step();  // add
      m->step();  // jmp
      m->step();  // writes 8 west (tile 0)
      m->run(5);  // and a run() entry must refresh too (loops to a 9 write)
    }
    const std::string ctx = std::string("rewiring on ") + engine_name(kind);
    expect_same_state(f, ref, ctx);
    EXPECT_EQ(to_signed(f.tile(2).dmem(5)), 7) << ctx;
    EXPECT_EQ(to_signed(f.tile(0).dmem(5)), 9) << ctx;
  }
}

TEST(EngineConformance, ImemPokeRespecializesBetweenRuns) {
  // The threaded engine caches per-tile specializations keyed on
  // Tile::code_version(); an instruction-memory poke between runs must be
  // honoured by every engine (stale superinstructions would diverge).
  for (const EngineKind kind : kEngines) {
    Fabric ref(1, 1);
    ref.attach_engine(nullptr);
    Fabric f(1, 1);
    attach(f, kind);
    for (Fabric* m : {&ref, &f}) {
      m->tile(0).load_program(prog(
          "  movi 1, #10\nloop:\n  add 2, 2, #5\n  sub 1, 1, #1\n"
          "  bnez 1, loop\n  halt\n"));
      m->tile(0).restart();
      m->run(1'000);
      // Same deterministic upset on both: flip a bit of the add immediate.
      m->tile(0).flip_inst_bit(1, 2);
      m->tile(0).restart();
      m->run(1'000);
    }
    expect_same_state(f, ref,
                      std::string("imem_poke on ") + engine_name(kind));
  }
}

// --- batch-specific behaviour ----------------------------------------------

TEST(BatchEngine, LockstepBatchMatchesSequentialInterpreterPerInstance) {
  // W instances of one program diverge on their data (branchy countdowns
  // of different lengths, remote writes, one instance faulting): each
  // batched result must equal its own sequential interpreter run.
  constexpr int W = 5;
  const auto setup = [](Fabric& f, int seed) {
    f.links().set_output(0, Direction::kEast);
    f.tile(0).load_program(prog(
        "  movi 1, #" + std::to_string(5 + 7 * seed) +
        "\n  movi 2, #0\n"
        "loop:\n  add 2, 2, 1\n  sub 1, 1, #1\n  bnez 1, loop\n"
        "  mov !3, 2\n  halt\n"));
    f.tile(1).load_program(prog("  movi 9, #1\n  nop\n  halt\n"));
    f.tile(0).restart();
    f.tile(1).restart();
    if (seed == 3) f.fail_link(0);  // one instance faults at the send
  };

  std::vector<Fabric> batch;
  std::vector<Fabric> solo;
  for (int i = 0; i < W; ++i) {
    batch.emplace_back(1, 2);
    solo.emplace_back(1, 2);
    setup(batch.back(), i);
    setup(solo.back(), i);
  }
  std::vector<Fabric*> ptrs;
  for (auto& f : batch) ptrs.push_back(&f);

  BatchEngine engine(W);
  const auto results = engine.run_batch(ptrs, 10'000);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(W));
  for (int i = 0; i < W; ++i) {
    const auto want = solo[static_cast<std::size_t>(i)].run_interpreter(10'000);
    const std::string ctx = "batch instance " + std::to_string(i);
    expect_same_result(results[static_cast<std::size_t>(i)], want, ctx);
    expect_same_state(batch[static_cast<std::size_t>(i)],
                      solo[static_cast<std::size_t>(i)], ctx);
  }
}

TEST(BatchEngine, IsolatedModeMatchesInterpreterAcrossDivergentInstances) {
  // No instance has a live link and no tracer is attached, so run_batch
  // takes isolated mode (per-tile bursts plus closed-form idle
  // accounting).  Instances diverge every way that path must handle:
  // data-dependent countdowns under identical code (burst pc divergence),
  // per-instance stall windows, a tile halted before the run, a dynamic
  // fault, and a spinner that exhausts the budget.
  constexpr int W = 6;
  const auto setup = [](Fabric& f, int seed) {
    // Identical code across instances; only the .data seed differs, so
    // the lanes start converged and split at the bnez.
    f.tile(0).load_program(prog(
        "  .data 0, " + std::to_string(20 + 13 * seed) +
        "\nloop:\n  sub 0, 0, #1\n  bnez 0, loop\n  halt\n"));
    f.tile(0).restart();
    f.tile(1).load_program(prog(
        "  movi 3, #5\n  add 4, 3, #9\n  add 5, 4, 4\n  halt\n"));
    if (seed != 4) f.tile(1).restart();  // seed 4: halted before the run
    f.tile(2).load_program(
        seed == 2 ? prog("  movi 0, #1\n  nop\n")  // runs off the end
                  : prog("  .data 1, 30\n  mov 2, 1*\n  halt\n"));
    f.tile(2).restart();
    f.tile(2).stall_until(40 + seed);
    f.tile(3).load_program(seed == 5 ? prog("spin:\n  jmp spin\n")
                                     : prog("  movi 7, #3\n  halt\n"));
    f.tile(3).restart();
  };

  std::vector<Fabric> batch;
  std::vector<Fabric> solo;
  batch.reserve(W);
  solo.reserve(W);
  std::vector<Fabric*> ptrs;
  for (int i = 0; i < W; ++i) {
    batch.emplace_back(2, 2);
    solo.emplace_back(2, 2);
    setup(batch.back(), i);
    setup(solo.back(), i);
    ptrs.push_back(&batch.back());
  }
  BatchEngine engine(W);
  const auto results = engine.run_batch(ptrs, 3'000);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(W));
  for (int i = 0; i < W; ++i) {
    const std::size_t n = static_cast<std::size_t>(i);
    const auto want = solo[n].run_interpreter(3'000);
    const std::string ctx = "isolated instance " + std::to_string(i);
    expect_same_result(results[n], want, ctx);
    expect_same_state(batch[n], solo[n], ctx);
    expect_stats_invariant(batch[n], ctx);
  }
}

TEST(BatchEngine, MixedShapesFallBackToSequentialRuns) {
  Fabric a(1, 2);
  Fabric b(2, 2);  // different shape: lockstep impossible
  Fabric ref_a(1, 2);
  Fabric ref_b(2, 2);
  wl_halt_1x2(a);
  wl_halt_1x2(ref_a);
  wl_halt(b);
  wl_halt(ref_b);
  Fabric* ptrs[] = {&a, &b};
  BatchEngine engine(2);
  const auto results = engine.run_batch(ptrs, 1'000);
  expect_same_result(results[0], ref_a.run_interpreter(1'000), "fallback a");
  expect_same_result(results[1], ref_b.run_interpreter(1'000), "fallback b");
  expect_same_state(a, ref_a, "fallback a");
  expect_same_state(b, ref_b, "fallback b");
}

// --- unit coverage ----------------------------------------------------------

TEST(Blocks, SegmentsLeadersBranchesAndTerminators) {
  const auto p = prog(
      "  movi 0, #1\n"        // 0  block 0 [0,3) falls into loop
      "  movi 1, #4\n"        // 1
      "loop:\n"               // hmm: label on next line
      "  add 0, 0, #1\n"      // 2
      "  sub 1, 1, #1\n"      // 3
      "  bnez 1, loop\n"      // 4  branch -> leader at 2
      "  halt\n");            // 5
  const auto blocks = isa::segment_blocks(isa::predecode_all(p.code));
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].begin, 0);
  EXPECT_EQ(blocks[0].end, 2);
  EXPECT_EQ(blocks[0].term, isa::BlockTerm::kFallthrough);
  EXPECT_EQ(blocks[1].begin, 2);
  EXPECT_EQ(blocks[1].end, 5);
  EXPECT_EQ(blocks[1].term, isa::BlockTerm::kBranch);
  EXPECT_EQ(blocks[2].begin, 5);
  EXPECT_EQ(blocks[2].end, 6);
  EXPECT_EQ(blocks[2].term, isa::BlockTerm::kHalt);
}

TEST(Blocks, CoverageIsExactAndOrdered) {
  SplitMix64 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<isa::Instruction> code;
    const int n = 1 + static_cast<int>(rng.next_below(40));
    for (int i = 0; i < n; ++i) {
      isa::Instruction in;
      in.opcode = static_cast<isa::Opcode>(
          rng.next_below(static_cast<std::uint64_t>(isa::Opcode::kOpcodeCount) +
                         1));  // includes the poisoned kOpcodeCount slot
      in.imm = static_cast<std::int32_t>(rng.next_below(60)) - 10;
      code.push_back(in);
    }
    const auto blocks = isa::segment_blocks(isa::predecode_all(code));
    int expect_begin = 0;
    for (const auto& b : blocks) {
      EXPECT_EQ(b.begin, expect_begin);
      EXPECT_GT(b.end, b.begin);
      expect_begin = b.end;
    }
    EXPECT_EQ(expect_begin, n);
  }
  EXPECT_TRUE(isa::segment_blocks({}).empty());
}

TEST(EngineApi, SpecParsingRoundTrips) {
  EXPECT_EQ(parse_engine_spec("interp")->kind, EngineKind::kInterp);
  EXPECT_EQ(parse_engine_spec("threaded")->kind, EngineKind::kThreaded);
  EXPECT_EQ(parse_engine_spec("batch")->kind, EngineKind::kBatch);
  EXPECT_EQ(parse_engine_spec("batch")->batch_width, 8);
  EXPECT_EQ(parse_engine_spec("batch:16")->batch_width, 16);
  EXPECT_FALSE(parse_engine_spec("batch:0").has_value());
  EXPECT_FALSE(parse_engine_spec("batch:x").has_value());
  EXPECT_FALSE(parse_engine_spec("threaded:4").has_value());
  EXPECT_FALSE(parse_engine_spec("simd").has_value());
  for (const EngineKind kind : kEngines) {
    EngineOptions o;
    o.kind = kind;
    o.batch_width = 16;
    EXPECT_EQ(parse_engine_spec(engine_spec(o))->kind, kind);
  }
}

TEST(EngineApi, ProcessDefaultResolvesLazilyAndInterpClears) {
  use_process_engine(EngineOptions{EngineKind::kThreaded, 8, 0});
  Fabric f(1, 1);
  f.tile(0).load_program(prog("  movi 0, #3\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  ASSERT_NE(f.engine(), nullptr);
  EXPECT_EQ(static_cast<ExecutionEngine*>(f.engine())->kind(),
            EngineKind::kThreaded);
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 3);

  use_process_engine(EngineOptions{});  // back to interp for other tests
  Fabric g(1, 1);
  g.tile(0).load_program(prog("  halt\n"));
  g.tile(0).restart();
  g.run(100);
  EXPECT_EQ(g.engine(), nullptr);
}

TEST(EngineApi, AttachNullptrPinsInterpreterAgainstProcessDefault) {
  use_process_engine(EngineOptions{EngineKind::kBatch, 4, 0});
  Fabric f(1, 1);
  f.attach_engine(nullptr);
  f.tile(0).load_program(prog("  movi 0, #9\n  halt\n"));
  f.tile(0).restart();
  f.run(100);
  EXPECT_EQ(f.engine(), nullptr);
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 9);
  use_process_engine(EngineOptions{});
}

// --- randomized differential fuzz ------------------------------------------

isa::Program random_program(SplitMix64& rng) {
  isa::Program p;
  const int n = 4 + static_cast<int>(rng.next_below(28));
  for (int i = 0; i < n; ++i) {
    isa::Instruction in;
    in.opcode = static_cast<isa::Opcode>(
        rng.next_below(static_cast<std::uint64_t>(isa::Opcode::kOpcodeCount)));
    in.flags = static_cast<std::uint8_t>(rng.next() & 0x1F);
    const auto addr = [&rng]() -> std::uint16_t {
      // Mostly in-range, occasionally statically out of range.
      return rng.next_below(12) == 0
                 ? static_cast<std::uint16_t>(512 + rng.next_below(200))
                 : static_cast<std::uint16_t>(rng.next_below(48));
    };
    in.dst = addr();
    in.srca = addr();
    in.srcb = addr();
    // Branch targets cluster in range with occasional escapes.
    in.imm = static_cast<std::int32_t>(rng.next_below(
                 static_cast<std::uint64_t>(n) + 6)) -
             3;
    p.code.push_back(in);
  }
  for (int a = 0; a < 16; ++a) {
    p.data.push_back(isa::DataPatch{
        a, static_cast<Word>(rng.next() &
                             (rng.next_below(4) == 0 ? kWordMask : 0x3F))});
  }
  return p;
}

TEST(EngineFuzz, DifferentialAcrossAllEnginesOn64RandomPrograms) {
  SplitMix64 rng(0xC64A'F00D);
  for (int iter = 0; iter < 64; ++iter) {
    isa::Program programs[4];
    for (auto& p : programs) p = random_program(rng);
    // Odd iterations run linkless: no tile can interact, which sends the
    // batch engine down its isolated-mode path instead of the lockstep
    // sweep (remote-flagged writes then fault with kNoActiveLink).
    const bool linked = (iter % 2) == 0;
    const auto setup = [&programs, linked](Fabric& f) {
      if (linked) {
        f.links().set_output(0, Direction::kEast);
        f.links().set_output(1, Direction::kSouth);
        f.links().set_output(3, Direction::kWest);
      }
      for (int t = 0; t < 4; ++t) {
        f.tile(t).load_program(programs[t]);
        f.tile(t).restart();
      }
    };

    Fabric ref(2, 2);
    ref.attach_engine(nullptr);
    setup(ref);
    const auto want = ref.run(2'000);
    expect_stats_invariant(ref, "fuzz ref " + std::to_string(iter));

    for (const EngineKind kind : {EngineKind::kThreaded, EngineKind::kBatch}) {
      Fabric f(2, 2);
      attach(f, kind);
      setup(f);
      const auto got = f.run(2'000);
      const std::string ctx = "fuzz " + std::to_string(iter) + " on " +
                              engine_name(kind);
      expect_same_result(got, want, ctx);
      expect_same_state(f, ref, ctx);
    }

    // The same setup three-wide through one run_batch call: the uniform
    // multi-instance sweep (linked iterations) and multi-instance
    // isolated bursts (linkless ones) against the same reference.
    constexpr int kW = 3;
    std::vector<Fabric> lanes;
    lanes.reserve(kW);
    std::vector<Fabric*> ptrs;
    for (int i = 0; i < kW; ++i) {
      auto& f = lanes.emplace_back(2, 2);
      setup(f);
      ptrs.push_back(&f);
    }
    BatchEngine be(kW);
    const auto results = be.run_batch(ptrs, 2'000);
    for (int i = 0; i < kW; ++i) {
      const std::string ctx = "fuzz batch " + std::to_string(iter) +
                              " lane " + std::to_string(i);
      expect_same_result(results[static_cast<std::size_t>(i)], want, ctx);
      expect_same_state(lanes[static_cast<std::size_t>(i)], ref, ctx);
    }
  }
}

}  // namespace
}  // namespace cgra::engine

// Routing and placement tests (Equation 1's term C machinery).
#include <gtest/gtest.h>

#include "interconnect/routing.hpp"
#include "mapping/placement.hpp"

namespace cgra::mapping {
namespace {

using interconnect::CopyCostModel;
using interconnect::LinkConfig;
using procnet::Process;
using procnet::ProcessNetwork;

TEST(Routing, ManhattanDistance) {
  LinkConfig mesh(3, 4);
  EXPECT_EQ(interconnect::manhattan_distance(mesh, 0, 0), 0);
  EXPECT_EQ(interconnect::manhattan_distance(mesh, 0, 3), 3);
  EXPECT_EQ(interconnect::manhattan_distance(mesh, 0, 11), 5);
  EXPECT_EQ(interconnect::manhattan_distance(mesh, 5, 6), 1);
}

TEST(Routing, ShortestRouteLengthsAndEndpoints) {
  LinkConfig mesh(3, 3);
  const auto route = interconnect::shortest_route(mesh, 0, 8);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 4);
  // Walk the route and land on the destination.
  int cur = 0;
  for (const auto d : route->hops) {
    const auto next = mesh.neighbor(cur, d);
    ASSERT_TRUE(next.has_value());
    cur = *next;
  }
  EXPECT_EQ(cur, 8);
}

TEST(Routing, SelfRouteIsEmpty) {
  LinkConfig mesh(2, 2);
  const auto route = interconnect::shortest_route(mesh, 3, 3);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->length(), 0);
}

TEST(Routing, InvalidTilesRejected) {
  LinkConfig mesh(2, 2);
  EXPECT_FALSE(interconnect::shortest_route(mesh, -1, 0).has_value());
  EXPECT_FALSE(interconnect::shortest_route(mesh, 0, 4).has_value());
}

TEST(Routing, CopyCostScalesWithWordsAndHops) {
  CopyCostModel copy;
  EXPECT_DOUBLE_EQ(copy.transfer_ns(64, 0), 0.0);
  EXPECT_DOUBLE_EQ(copy.transfer_ns(64, 1), 64 * 12.5);
  EXPECT_DOUBLE_EQ(copy.transfer_ns(64, 2), 2 * 64 * 12.5);
  CopyCostModel with_links{5 * kCycleNs, 700.0};
  EXPECT_DOUBLE_EQ(with_links.transfer_ns(16, 1), 16 * 12.5 + 700.0);
}

// ---- placement ----

ProcessNetwork chain(int n) {
  std::vector<Process> procs;
  for (int i = 0; i < n; ++i) {
    Process p;
    p.name = "p" + std::to_string(i);
    p.runtime_cycles = 100 * (i + 1);
    procs.push_back(p);
  }
  return ProcessNetwork::pipeline(std::move(procs), 64);
}

Binding one_to_one(const ProcessNetwork& net) {
  Binding b;
  for (int i = 0; i < net.size(); ++i) b.groups.push_back({{i}, 1});
  return b;
}

TEST(Placement, SnakeKeepsPipelineNeighborsAdjacent) {
  const auto net = chain(6);
  const auto binding = one_to_one(net);
  const auto p = place(binding, 2, 3, PlacementStrategy::kSnake);
  EXPECT_TRUE(p.validate(binding).ok());
  const auto eval = evaluate_placement(net, binding, p, CopyCostModel{});
  EXPECT_EQ(eval.non_neighbor_edges, 0);
  EXPECT_DOUBLE_EQ(eval.copy_ns_per_item, 0.0);
}

TEST(Placement, RowMajorPaysAtWraps) {
  const auto net = chain(6);
  const auto binding = one_to_one(net);
  const auto p = place(binding, 2, 3, PlacementStrategy::kRowMajor);
  const auto eval = evaluate_placement(net, binding, p, CopyCostModel{});
  // Edge p2 -> p3 spans the row wrap (tile 2 -> tile 3): distance 3.
  EXPECT_EQ(eval.non_neighbor_edges, 1);
  EXPECT_EQ(eval.total_hops, 2);
  EXPECT_GT(eval.copy_ns_per_item, 0.0);
}

TEST(Placement, ScatterIsWorseThanSnake) {
  const auto net = chain(9);
  const auto binding = one_to_one(net);
  const auto snake = place(binding, 3, 3, PlacementStrategy::kSnake);
  const auto scatter = place(binding, 3, 3, PlacementStrategy::kScatter);
  const CopyCostModel copy;
  EXPECT_GT(evaluate_placement(net, binding, scatter, copy).copy_ns_per_item,
            evaluate_placement(net, binding, snake, copy).copy_ns_per_item);
}

TEST(Placement, ValidationCatchesDuplicates) {
  const auto net = chain(2);
  const auto binding = one_to_one(net);
  Placement p;
  p.mesh_rows = 1;
  p.mesh_cols = 2;
  p.tile_of = {{0}, {0}};
  EXPECT_FALSE(p.validate(binding).ok());
}

TEST(Placement, ValidationCatchesReplicaMismatch) {
  const auto net = chain(2);
  Binding b;
  b.groups = {{{0}, 2}, {{1}, 1}};
  Placement p;
  p.mesh_rows = 1;
  p.mesh_cols = 3;
  p.tile_of = {{0}, {1}};  // group 0 needs two tiles
  EXPECT_FALSE(p.validate(b).ok());
}

TEST(Placement, DoesNotFitThrows) {
  const auto net = chain(5);
  const auto binding = one_to_one(net);
  EXPECT_THROW(place(binding, 2, 2, PlacementStrategy::kSnake),
               std::invalid_argument);
}

TEST(Placement, ReplicatedGroupsChargeWorstReplica) {
  const auto net = chain(2);
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 2}};
  Placement p;
  p.mesh_rows = 1;
  p.mesh_cols = 4;
  p.tile_of = {{0}, {1, 3}};  // replica at tile 3 is 3 hops away
  const auto eval = evaluate_placement(net, b, p, CopyCostModel{});
  EXPECT_EQ(eval.total_hops, 2);  // worst distance 3 => 2 extra hops
}

TEST(Placement, LocalSearchImprovesScatter) {
  const auto net = chain(9);
  const auto binding = one_to_one(net);
  const CopyCostModel copy;
  const auto scatter = place(binding, 3, 3, PlacementStrategy::kScatter);
  const double before =
      evaluate_placement(net, binding, scatter, copy).copy_ns_per_item;
  const auto improved = improve_placement(net, binding, scatter, copy);
  const double after =
      evaluate_placement(net, binding, improved, copy).copy_ns_per_item;
  EXPECT_LE(after, before);
  EXPECT_LT(after, before * 0.8);  // the greedy search must bite
  EXPECT_TRUE(improved.validate(binding).ok());
}

TEST(Placement, EvaluateWithPlacementFoldsTermC) {
  const auto net = chain(4);
  const auto binding = one_to_one(net);
  const CopyCostModel copy;
  const auto good = place(binding, 2, 2, PlacementStrategy::kSnake);
  const auto bad = place(binding, 2, 2, PlacementStrategy::kScatter);
  const auto base = evaluate(net, binding, CostParams{});
  const auto with_good =
      evaluate_with_placement(net, binding, good, CostParams{}, copy);
  const auto with_bad =
      evaluate_with_placement(net, binding, bad, CostParams{}, copy);
  EXPECT_DOUBLE_EQ(with_good.ii_ns, base.ii_ns);  // snake: no copies
  EXPECT_GE(with_bad.ii_ns, with_good.ii_ns);
  EXPECT_LE(with_bad.items_per_sec, with_good.items_per_sec);
  EXPECT_LE(with_bad.avg_utilization, with_good.avg_utilization + 1e-12);
}

}  // namespace
}  // namespace cgra::mapping

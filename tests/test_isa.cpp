// Encode/decode round-trip and metadata tests for the instruction set.
#include <gtest/gtest.h>

#include "isa/disassembler.hpp"
#include "isa/instruction.hpp"

namespace cgra::isa {
namespace {

TEST(Isa, EncodeDecodeRoundTripBasic) {
  Instruction in;
  in.opcode = Opcode::kAdd;
  in.flags = kFlagSrcAIndirect | kFlagUseImm;
  in.dst = 100;
  in.srca = 200;
  in.srcb = 0;
  in.imm = -42;
  const auto decoded = decode(encode(in));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, in);
}

TEST(Isa, ImmediateSignBoundaries) {
  for (const std::int32_t imm : {kImmMin, kImmMin + 1, -1, 0, 1, kImmMax}) {
    Instruction in;
    in.opcode = Opcode::kMovi;
    in.imm = imm;
    const auto decoded = decode(encode(in));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, imm) << imm;
  }
}

TEST(Isa, AddressFieldBoundaries) {
  Instruction in;
  in.opcode = Opcode::kMov;
  in.dst = kAddrFieldMask;
  in.srca = 511;
  const auto decoded = decode(encode(in));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst, kAddrFieldMask);
  EXPECT_EQ(decoded->srca, 511);
}

TEST(Isa, UndefinedOpcodeRejected) {
  Instruction in;
  in.opcode = Opcode::kJmp;
  EncodedInstr raw = encode(in);
  // Force the opcode field to an undefined value (63).
  raw.hi = static_cast<std::uint8_t>((raw.hi & ~0xFCu) | (63u << 2));
  EXPECT_FALSE(decode(raw).has_value());
}

TEST(Isa, MnemonicRoundTrip) {
  for (int i = 0; i < static_cast<int>(Opcode::kOpcodeCount); ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto back = opcode_from_mnemonic(mnemonic(op));
    ASSERT_TRUE(back.has_value()) << mnemonic(op);
    EXPECT_EQ(*back, op);
  }
}

TEST(Isa, OperandMetadataConsistency) {
  // Branches never write; ALU ops read both sources.
  EXPECT_FALSE(writes_dst(Opcode::kBnez));
  EXPECT_FALSE(writes_dst(Opcode::kHalt));
  EXPECT_TRUE(writes_dst(Opcode::kCmul));
  EXPECT_TRUE(reads_srca(Opcode::kMov));
  EXPECT_FALSE(reads_srca(Opcode::kMovi));
  EXPECT_TRUE(reads_srcb(Opcode::kXor));
  EXPECT_FALSE(reads_srcb(Opcode::kMov));
  EXPECT_TRUE(is_branch(Opcode::kJmp));
  EXPECT_FALSE(is_branch(Opcode::kAdd));
}

// Round-trip every opcode with a mix of flags, parameterised.
class OpcodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeRoundTrip, AllFieldsSurvive) {
  Instruction in;
  in.opcode = static_cast<Opcode>(GetParam());
  in.flags = static_cast<std::uint8_t>(GetParam() % 32);
  in.dst = static_cast<std::uint16_t>((GetParam() * 37) % 4096);
  in.srca = static_cast<std::uint16_t>((GetParam() * 101) % 4096);
  in.srcb = static_cast<std::uint16_t>((GetParam() * 53) % 4096);
  in.imm = (GetParam() * 991) % kImmMax - kImmMax / 2;
  const auto decoded = decode(encode(in));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, in);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0, static_cast<int>(Opcode::kOpcodeCount)));

TEST(Disassembler, RendersOperandForms) {
  Instruction in;
  in.opcode = Opcode::kCmul;
  in.dst = 10;
  in.srca = 20;
  in.srcb = 30;
  in.flags = kFlagDstRemote | kFlagSrcAIndirect | kFlagSrcBIndirect;
  EXPECT_EQ(disassemble(in), "cmul !10, 20*, 30*");

  Instruction imm;
  imm.opcode = Opcode::kAdd;
  imm.dst = 1;
  imm.srca = 2;
  imm.flags = kFlagUseImm;
  imm.imm = 7;
  EXPECT_EQ(disassemble(imm), "add 1, 2, #7");

  Instruction br;
  br.opcode = Opcode::kBnez;
  br.srca = 5;
  br.imm = 3;
  EXPECT_EQ(disassemble(br), "bnez 5, 3");
}

}  // namespace
}  // namespace cgra::isa

// JPEG constant-table tests: quantiser scaling, zigzag, Huffman canonics.
#include <gtest/gtest.h>

#include <set>

#include "apps/jpeg/tables.hpp"

namespace cgra::jpeg {
namespace {

TEST(JpegTables, QuantBaseValues) {
  EXPECT_EQ(luminance_quant()[0], 16);
  EXPECT_EQ(luminance_quant()[63], 99);
}

TEST(JpegTables, Quality50IsIdentityScaling) {
  const auto q = scaled_quant(50);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(q[i], luminance_quant()[i]) << i;
  }
}

TEST(JpegTables, HigherQualityMeansSmallerQuantisers) {
  const auto q90 = scaled_quant(90);
  const auto q10 = scaled_quant(10);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_LE(q90[i], q10[i]) << i;
    EXPECT_GE(q90[i], 1);
    EXPECT_LE(q10[i], 255);
  }
}

TEST(JpegTables, QualityClamped) {
  EXPECT_NO_THROW(scaled_quant(0));
  EXPECT_NO_THROW(scaled_quant(101));
}

TEST(JpegTables, ZigzagIsPermutation) {
  std::set<int> seen(zigzag_order().begin(), zigzag_order().end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(JpegTables, ZigzagKnownPrefix) {
  // The canonical start: 0, 1, 8, 16, 9, 2, 3, 10, ...
  const auto& z = zigzag_order();
  EXPECT_EQ(z[0], 0);
  EXPECT_EQ(z[1], 1);
  EXPECT_EQ(z[2], 8);
  EXPECT_EQ(z[3], 16);
  EXPECT_EQ(z[4], 9);
  EXPECT_EQ(z[5], 2);
  EXPECT_EQ(z[63], 63);
}

TEST(JpegTables, ZigzagInverseComposesToIdentity) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(zigzag_inverse()[static_cast<std::size_t>(
                  zigzag_order()[static_cast<std::size_t>(i)])],
              i);
  }
}

TEST(JpegTables, HuffSpecsSumToSymbolCount) {
  for (const auto* spec : {&dc_luminance_spec(), &ac_luminance_spec()}) {
    int total = 0;
    for (const auto c : spec->counts) total += c;
    EXPECT_EQ(static_cast<std::size_t>(total), spec->symbols.size());
  }
  EXPECT_EQ(dc_luminance_spec().symbols.size(), 12u);
  EXPECT_EQ(ac_luminance_spec().symbols.size(), 162u);
}

TEST(JpegTables, CanonicalCodesArePrefixFree) {
  const auto enc = build_encoder(ac_luminance_spec());
  // Compare every pair of assigned codes for prefix relations.
  for (int a = 0; a < 256; ++a) {
    if (enc.length[static_cast<std::size_t>(a)] == 0) continue;
    for (int b = 0; b < 256; ++b) {
      if (b == a || enc.length[static_cast<std::size_t>(b)] == 0) continue;
      const int la = enc.length[static_cast<std::size_t>(a)];
      const int lb = enc.length[static_cast<std::size_t>(b)];
      if (la > lb) continue;
      const auto prefix =
          enc.code[static_cast<std::size_t>(b)] >> (lb - la);
      EXPECT_FALSE(prefix == enc.code[static_cast<std::size_t>(a)])
          << a << " prefixes " << b;
    }
  }
}

TEST(JpegTables, KnownDcCodes) {
  // Annex K: DC category 0 -> code 00 (2 bits), category 2 -> 011 (3 bits).
  const auto enc = build_encoder(dc_luminance_spec());
  EXPECT_EQ(enc.length[0], 2);
  EXPECT_EQ(enc.code[0], 0b00u);
  EXPECT_EQ(enc.length[2], 3);
  EXPECT_EQ(enc.code[2], 0b011u);
}

}  // namespace
}  // namespace cgra::jpeg

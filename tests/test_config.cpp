// Reconfiguration controller tests: ICAP cost accounting, partial
// reconfiguration overlap, schedule driving.
#include <gtest/gtest.h>

#include "config/reconfig.hpp"
#include "isa/assembler.hpp"

namespace cgra::config {
namespace {

using fabric::Fabric;
using interconnect::Direction;
using interconnect::LinkConfig;
using interconnect::LinkCostModel;

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

EpochConfig epoch_with_program(int rows, int cols, int tile,
                               const std::string& src) {
  EpochConfig e;
  e.links = LinkConfig(rows, cols);
  TileUpdate u;
  u.program = prog(src);
  u.reload_program = true;
  e.tiles[tile] = std::move(u);
  return e;
}

TEST(Reconfig, ProgramReloadCostMatchesIcap) {
  Fabric f(1, 1);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  // 2 instructions + 1 data word.
  auto e = epoch_with_program(1, 1, 0, ".data 0, 7\n  nop\n  halt\n");
  const auto rep = ctrl.apply(f, e);
  EXPECT_NEAR(rep.inst_reload_ns, 100.0, 0.1);   // 2 x 50 ns
  EXPECT_NEAR(rep.data_reload_ns, 33.33, 0.01);  // 1 x 33.33 ns
  EXPECT_EQ(rep.links_changed, 0);
}

TEST(Reconfig, LinkChangesCharged) {
  Fabric f(2, 2);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{500.0});
  EpochConfig e;
  e.links = LinkConfig(2, 2);
  e.links.set_output(0, Direction::kEast);
  e.links.set_output(2, Direction::kNorth);
  const auto rep = ctrl.apply(f, e);
  EXPECT_EQ(rep.links_changed, 2);
  EXPECT_DOUBLE_EQ(rep.link_ns, 1000.0);
  EXPECT_EQ(f.links().output(0), Direction::kEast);
}

TEST(Reconfig, PatchesOnlyCostData) {
  Fabric f(1, 1);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  EpochConfig e;
  e.links = LinkConfig(1, 1);
  TileUpdate u;
  u.patches = {{3, 9}, {4, 8}};
  u.restart = false;
  e.tiles[0] = std::move(u);
  const auto rep = ctrl.apply(f, e);
  EXPECT_NEAR(rep.data_reload_ns, 2 * 33.3333, 0.01);
  EXPECT_DOUBLE_EQ(rep.inst_reload_ns, 0.0);
  EXPECT_EQ(f.tile(0).dmem(3), 9u);
}

TEST(Reconfig, ReconfiguredTileStallsOthersRun) {
  // Partial reconfiguration: tile 1 reloads (stalled), tile 0 keeps
  // computing during the reload.
  Fabric f(1, 2);
  f.tile(0).load_program(prog(
      "  movi 0, #40\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
  f.tile(0).restart();
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  auto e = epoch_with_program(1, 2, 1, "  movi 0, #5\n  halt\n");
  const auto rep = ctrl.apply(f, e);
  EXPECT_GT(rep.complete_cycle, 0);
  const auto run = f.run(100000);
  EXPECT_TRUE(run.ok());
  // Tile 1 was stalled for the reload duration...
  EXPECT_GE(f.tile(1).stats().cycles_stalled, rep.icap_busy_cycles - 1);
  // ...but tile 0 ran during that window: total runtime is the max of the
  // two, not the sum.
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 0);
  EXPECT_EQ(to_signed(f.tile(1).dmem(0)), 5);
}

TEST(Reconfig, SerialIcapSerialisesTwoTiles) {
  Fabric f(1, 2);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  EpochConfig e;
  e.links = LinkConfig(1, 2);
  for (int t = 0; t < 2; ++t) {
    TileUpdate u;
    u.program = prog("  nop\n  halt\n");
    u.reload_program = true;
    e.tiles[t] = std::move(u);
  }
  const auto rep = ctrl.apply(f, e);
  // Two programs of 2 instructions each: 200 ns = 80 cycles total, and the
  // second tile resumes strictly after the first.
  EXPECT_NEAR(rep.inst_reload_ns, 200.0, 0.1);
  EXPECT_GT(f.tile(1).stalled_until(), f.tile(0).stalled_until());
}

TEST(Reconfig, RunScheduleAccumulatesTimeline) {
  Fabric f(1, 1);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  std::vector<EpochConfig> epochs;
  epochs.push_back(epoch_with_program(1, 1, 0, "  movi 0, #1\n  halt\n"));
  epochs.push_back(epoch_with_program(1, 1, 0, "  movi 1, #2\n  halt\n"));
  const auto result = run_schedule(f, ctrl, epochs, 100000);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.timeline.transitions.size(), 2u);
  EXPECT_GT(result.timeline.reconfig_ns, 0.0);
  EXPECT_GT(result.timeline.epoch_compute_ns, 0.0);
  EXPECT_EQ(to_signed(f.tile(0).dmem(0)), 1);
  EXPECT_EQ(to_signed(f.tile(0).dmem(1)), 2);
}

TEST(Reconfig, ScheduleStopsOnFault) {
  Fabric f(1, 1);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  std::vector<EpochConfig> epochs;
  // Remote write with no link -> fault.
  epochs.push_back(epoch_with_program(1, 1, 0, "  mov !0, 0\n  halt\n"));
  epochs.push_back(epoch_with_program(1, 1, 0, "  movi 0, #1\n  halt\n"));
  const auto result = run_schedule(f, ctrl, epochs, 100000);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.faults.size(), 1u);
}

TEST(Reconfig, PinnedTileRestartsWithoutReload) {
  // Epoch 2 reuses the resident program (restart only): zero ICAP cost.
  Fabric f(1, 1);
  ReconfigController ctrl(IcapModel{}, LinkCostModel{0.0});
  auto e1 = epoch_with_program(1, 1, 0, "  add 1, 1, #1\n  halt\n");
  ctrl.apply(f, e1);
  f.run(1000);
  EpochConfig e2;
  e2.links = LinkConfig(1, 1);
  e2.tiles[0] = TileUpdate{};  // restart=true, nothing reloaded
  const auto rep = ctrl.apply(f, e2);
  EXPECT_DOUBLE_EQ(rep.total_ns(), 0.0);
  f.run(1000);
  EXPECT_EQ(to_signed(f.tile(0).dmem(1)), 2);  // ran twice
}

}  // namespace
}  // namespace cgra::config

// Streaming pipeline tests: overlapped JPEG block pipeline and the
// partial-vs-full reconfiguration ablation.
#include <gtest/gtest.h>

#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/process_table.hpp"
#include "common/prng.hpp"
#include "config/reconfig.hpp"
#include "isa/assembler.hpp"

namespace cgra {
namespace {

std::vector<jpeg::IntBlock> random_blocks(int n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<jpeg::IntBlock> out(static_cast<std::size_t>(n));
  for (auto& b : out) {
    for (auto& v : b) v = static_cast<int>(rng.next_below(256));
  }
  return out;
}

TEST(JpegStream, OutputsMatchHostForEveryBlock) {
  const auto blocks = random_blocks(8, 0x1234);
  const auto quant = jpeg::scaled_quant(50);
  const auto result = jpeg::encode_blocks_on_fabric_stream(blocks, quant);
  ASSERT_TRUE(result.ok()) << result.faults.size() << " faults";
  ASSERT_EQ(result.zigzagged.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(result.zigzagged[i],
              jpeg::encode_block_stages(blocks[i], quant))
        << "block " << i;
  }
}

TEST(JpegStream, SteadyBeatIsBoundedByHeaviestStage) {
  const auto blocks = random_blocks(12, 0x77);
  const auto quant = jpeg::scaled_quant(50);
  const auto result = jpeg::encode_blocks_on_fabric_stream(blocks, quant);
  ASSERT_TRUE(result.ok());
  const auto kernels = jpeg::measure_jpeg_kernels();
  // Each beat runs prologue (64 moves) + the heaviest stage (DCT) + its
  // 64-word send loop; the steady beat must be within ~15% of that.
  const std::int64_t expect = 64 + kernels.dct + 5 * 64 + 4;
  EXPECT_GT(result.steady_ii_cycles, kernels.dct);
  EXPECT_LT(static_cast<double>(result.steady_ii_cycles),
            1.15 * static_cast<double>(expect));
}

TEST(JpegStream, OverlapBeatsSequentialExecution) {
  // Pipelining K blocks must be much faster than K sequential single-block
  // runs: total beats ~ K + 3, each ~ one DCT, versus K x (sum of stages).
  const int k = 6;
  const auto blocks = random_blocks(k, 0x99);
  const auto quant = jpeg::scaled_quant(50);
  const auto stream = jpeg::encode_blocks_on_fabric_stream(blocks, quant);
  ASSERT_TRUE(stream.ok());
  std::int64_t stream_total = 0;
  for (const auto c : stream.beat_cycles) stream_total += c;

  std::int64_t sequential_total = 0;
  for (const auto& b : blocks) {
    const auto one = jpeg::encode_block_on_fabric(b, quant);
    ASSERT_TRUE(one.ok());
    sequential_total += one.total_cycles;
  }
  EXPECT_LT(static_cast<double>(stream_total),
            0.8 * static_cast<double>(sequential_total));
}

TEST(JpegStream, SingleBlockDegeneratesGracefully) {
  const auto blocks = random_blocks(1, 0x5);
  const auto quant = jpeg::scaled_quant(75);
  const auto result = jpeg::encode_blocks_on_fabric_stream(blocks, quant);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.zigzagged.size(), 1u);
  EXPECT_EQ(result.zigzagged[0],
            jpeg::encode_block_stages(blocks[0], quant));
}

// ---- partial vs full reconfiguration (the paper's core premise) ----

isa::Program prog(const std::string& src) {
  auto r = isa::assemble(src);
  EXPECT_TRUE(r.ok()) << r.status.message();
  return r.program;
}

TEST(PartialReconfig, FullStallDelaysUntouchedTiles) {
  // A long-running tile 0 plus a reconfiguration of tile 1: under partial
  // reconfiguration tile 0 hides the reload entirely; under full (single-
  // context) reconfiguration the whole run stretches by the reload time.
  auto run_variant = [&](bool partial) {
    fabric::Fabric fab(1, 2);
    fab.tile(0).load_program(prog(
        "  movi 0, #2000\nl:\n  sub 0, 0, #1\n  bnez 0, l\n  halt\n"));
    fab.tile(0).restart();
    config::ReconfigController ctrl(IcapModel{},
                                    interconnect::LinkCostModel{0.0},
                                    partial);
    config::EpochConfig e;
    e.links = interconnect::LinkConfig(1, 2);
    config::TileUpdate u;
    // A big payload: 400 instructions = 20 us = 8000 cycles.
    isa::Program big;
    big.code.resize(399);
    big.code.push_back(
        isa::Instruction{isa::Opcode::kHalt, 0, 0, 0, 0, 0});
    u.program = big;
    u.reload_program = true;
    e.tiles[1] = std::move(u);
    ctrl.apply(fab, e);
    return fab.run(1'000'000);
  };
  const auto partial = run_variant(true);
  const auto full = run_variant(false);
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(full.ok());
  // Partial: ~max(4003 compute, 8000 stall) ~ 8000.
  // Full: 8000 stall + 4003 compute ~ 12000.
  EXPECT_GT(full.cycles, partial.cycles + 3000);
}

TEST(PartialReconfig, DefaultControllerIsPartial) {
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{0.0});
  EXPECT_TRUE(ctrl.partial());
}

}  // namespace
}  // namespace cgra

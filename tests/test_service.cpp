// Job-service runtime tests: concurrent producers, determinism against
// serial per-request execution, batching, backpressure, cancel and
// deadline paths.  This binary also runs under ThreadSanitizer in CI
// (CGRA_TSAN preset) — keep every cross-thread interaction inside the
// service API or properly synchronised.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "cgra/service.hpp"

namespace cgra::service {
namespace {

jpeg::IntBlock test_block(int seed) {
  jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 1) * 37 + i * 13) % 256;
  }
  return raw;
}

std::vector<fft::Cplx> test_signal(int n, int seed) {
  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = {
        std::cos(0.1 * (i + seed)) / n, std::sin(0.07 * i - seed) / n};
  }
  return x;
}

/// A request the worker chews on for a while — used to hold the single
/// worker busy so the queue fills deterministically behind it.
JobRequest heavy_request() {
  JpegImageRequest req;
  req.image = jpeg::synthetic_image(64, 64, 1);
  req.quality = 50;
  return JobRequest{req};
}

TEST(Service, SingleJpegBlockMatchesHostAndFreshFabric) {
  Service svc(ServiceOptions{.workers = 1});
  const auto quant = jpeg::scaled_quant(75);
  const auto raw = test_block(0);

  JpegBlockRequest req;
  req.raw = raw;
  req.quant = quant;
  auto sub = svc.submit(JobRequest{req});
  ASSERT_TRUE(sub.accepted()) << sub.status.message();
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  const auto& payload = std::get<JpegBlockJobResult>(res.payload);

  EXPECT_EQ(payload.zigzagged, jpeg::encode_block_stages(raw, quant));
  const auto fresh = jpeg::encode_block_on_fabric(raw, quant);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(payload.zigzagged, fresh.zigzagged);
  EXPECT_EQ(payload.cycles, fresh.total_cycles);
}

TEST(Service, MixedProducersMatchSerialExecution) {
  // N producer threads race mixed FFT and JPEG jobs into one service;
  // every result must be bit-identical to serial per-request execution.
  constexpr int kProducers = 4;
  constexpr int kJobsEach = 6;
  const auto quant = jpeg::scaled_quant(50);
  const auto g = fft::make_geometry(32, 8);

  Service svc(ServiceOptions{.workers = 3, .queue_capacity = 256});
  std::vector<std::vector<JobHandle>> handles(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int j = 0; j < kJobsEach; ++j) {
        const int seed = p * kJobsEach + j;
        SubmitResult sub;
        if (j % 2 == 0) {
          JpegBlockRequest req;
          req.raw = test_block(seed);
          req.quant = quant;
          sub = svc.submit(JobRequest{req});
        } else {
          FftRequest req;
          req.n = g.n;
          req.m = g.m;
          req.input = test_signal(g.n, seed);
          sub = svc.submit(JobRequest{req});
        }
        ASSERT_TRUE(sub.accepted()) << sub.status.message();
        handles[static_cast<std::size_t>(p)].push_back(sub.handle);
      }
    });
  }
  for (auto& t : producers) t.join();

  for (int p = 0; p < kProducers; ++p) {
    for (int j = 0; j < kJobsEach; ++j) {
      const int seed = p * kJobsEach + j;
      const auto res = svc.wait(handles[static_cast<std::size_t>(p)]
                                       [static_cast<std::size_t>(j)]);
      ASSERT_TRUE(res.ok()) << "p=" << p << " j=" << j << ": "
                            << res.status.message();
      if (j % 2 == 0) {
        const auto& payload = std::get<JpegBlockJobResult>(res.payload);
        EXPECT_EQ(payload.zigzagged,
                  jpeg::encode_block_stages(test_block(seed), quant))
            << "p=" << p << " j=" << j;
      } else {
        const auto serial = fft::run_fabric_fft(g, test_signal(g.n, seed));
        ASSERT_TRUE(serial.ok());
        const auto& payload = std::get<FftJobResult>(res.payload);
        EXPECT_EQ(payload.output, serial.output) << "p=" << p << " j=" << j;
        EXPECT_EQ(payload.timeline.epoch_compute_ns,
                  serial.timeline.epoch_compute_ns)
            << "p=" << p << " j=" << j;
      }
    }
  }
  EXPECT_EQ(svc.counter("service.jobs.completed"),
            kProducers * kJobsEach);
  EXPECT_GT(svc.counter("cache.hit"), 0);
  EXPECT_GT(svc.counter("pool.acquire.reused") +
                svc.counter("pool.acquire.constructed"),
            0);
}

TEST(Service, SameKeyJobsBatchBehindBusyWorker) {
  // One worker, held busy by a heavy head job: the same-quant blocks
  // queued behind it must fuse into a single warm batch.
  Service svc(ServiceOptions{.workers = 1, .queue_capacity = 32});
  auto heavy = svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());

  const auto quant = jpeg::scaled_quant(75);
  std::vector<JobHandle> jobs;
  for (int i = 0; i < 5; ++i) {
    JpegBlockRequest req;
    req.raw = test_block(i);
    req.quant = quant;
    auto sub = svc.submit(JobRequest{req});
    ASSERT_TRUE(sub.accepted());
    jobs.push_back(sub.handle);
  }
  ASSERT_TRUE(svc.wait(heavy.handle).ok());
  for (int i = 0; i < 5; ++i) {
    const auto res = svc.wait(jobs[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(res.ok()) << res.status.message();
    const auto& payload = std::get<JpegBlockJobResult>(res.payload);
    EXPECT_EQ(payload.zigzagged,
              jpeg::encode_block_stages(test_block(i), quant));
  }
  // Two batches total: the heavy image, then the five fused blocks.
  EXPECT_EQ(svc.counter("service.batches"), 2);
}

TEST(Service, SaturationRejectsWithStatus) {
  // Capacity 3, one worker pinned on a heavy job: the 4th queued submit
  // must be rejected with a saturation Status, not block or drop.
  Service svc(ServiceOptions{.workers = 1, .queue_capacity = 3});
  auto heavy = svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());
  // The worker may not have dequeued the heavy job yet, so capacity
  // leaves room for at least 2 and at most 3 more accepts.
  const auto quant = jpeg::scaled_quant(75);
  int accepted = 0;
  Status rejection;
  for (int i = 0; i < 8; ++i) {
    JpegBlockRequest req;
    req.raw = test_block(i);
    req.quant = quant;
    auto sub = svc.submit(JobRequest{req});
    if (sub.accepted()) {
      ++accepted;
    } else {
      rejection = sub.status;
      EXPECT_EQ(sub.handle, nullptr);
    }
  }
  EXPECT_LE(accepted, 3);
  ASSERT_FALSE(rejection.ok());
  EXPECT_NE(rejection.message().find("saturated"), std::string::npos)
      << rejection.message();
  EXPECT_GT(svc.counter("service.jobs.rejected"), 0);
}

TEST(Service, CancelRemovesQueuedJobOnly) {
  Service svc(ServiceOptions{.workers = 1, .queue_capacity = 16});
  auto heavy = svc.submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());

  JpegBlockRequest req;
  req.quant = jpeg::scaled_quant(75);
  auto victim = svc.submit(JobRequest{req});
  ASSERT_TRUE(victim.accepted());

  EXPECT_TRUE(svc.cancel(victim.handle));
  EXPECT_FALSE(svc.cancel(victim.handle));  // already cancelled
  const auto res = svc.wait(victim.handle);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.status.message().find("cancelled"), std::string::npos);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(res.payload));

  // A finished job cannot be cancelled.
  ASSERT_TRUE(svc.wait(heavy.handle).ok());
  EXPECT_FALSE(svc.cancel(heavy.handle));
  EXPECT_EQ(svc.counter("service.jobs.cancelled"), 1);
}

TEST(Service, ExpiredDeadlineSkipsExecution) {
  Service svc(ServiceOptions{.workers = 1, .queue_capacity = 16});
  JpegBlockRequest req;
  req.quant = jpeg::scaled_quant(75);
  SubmitOptions late;
  late.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  auto sub = svc.submit(JobRequest{req}, late);
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.status.message().find("deadline"), std::string::npos);
  EXPECT_EQ(svc.counter("service.jobs.deadline_expired"), 1);
}

TEST(Service, ResilientBlockRecoversThroughPool) {
  // A per-job fault plan routes through the RecoveryManager on a pooled
  // 2x7 mesh; the output must still match the host reference.
  Service svc(ServiceOptions{.workers = 2});
  const auto quant = jpeg::scaled_quant(50);
  const auto raw = test_block(3);

  JpegBlockRequest req;
  req.raw = raw;
  req.quant = quant;
  req.plan.corrupt_icap(0, 1);  // one corrupted ICAP stream, then clean
  req.policy.max_icap_retries = 3;

  // Two in a row so the second reuses the reset mesh and cached artifacts.
  auto a = svc.submit(JobRequest{req});
  auto b = svc.submit(JobRequest{req});
  const auto ra = svc.wait(a.handle);
  const auto rb = svc.wait(b.handle);
  ASSERT_TRUE(ra.ok()) << ra.status.message();
  ASSERT_TRUE(rb.ok()) << rb.status.message();
  const auto& pa = std::get<JpegBlockJobResult>(ra.payload);
  const auto& pb = std::get<JpegBlockJobResult>(rb.payload);
  EXPECT_EQ(pa.zigzagged, jpeg::encode_block_stages(raw, quant));
  EXPECT_EQ(pb.zigzagged, pa.zigzagged);
}

TEST(Service, DseSweepMatchesDirectSweep) {
  Service svc(ServiceOptions{.workers = 2});
  DseSweepRequest req;
  req.net = jpeg::jpeg_split_pipeline();
  req.max_tiles = 10;
  auto sub = svc.submit(JobRequest{req});
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  const auto& payload = std::get<DseSweepJobResult>(res.payload);
  const auto direct = mapping::sweep(req.net, req.max_tiles, req.algorithm,
                                     req.params);
  ASSERT_EQ(payload.points.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(payload.points[i].eval.ii_ns, direct[i].eval.ii_ns) << i;
  }
}

TEST(Service, MapJobMatchesDirectMapping) {
  Service svc(ServiceOptions{.workers = 2});
  MapJobRequest req;
  req.net = jpeg::jpeg_split_pipeline();
  req.mesh_rows = 4;
  req.mesh_cols = 4;
  req.options.max_tiles = 5;
  auto sub = svc.submit(JobRequest{req});
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  const auto& payload = std::get<MapJobResult>(res.payload);
  ASSERT_TRUE(payload.mapped.ok());
  const auto direct =
      mapper::map_network(req.net, req.mesh_rows, req.mesh_cols, req.options);
  EXPECT_EQ(payload.mapped.binding.describe(req.net),
            direct.binding.describe(req.net));
  EXPECT_DOUBLE_EQ(payload.mapped.cost.total_ns(), direct.cost.total_ns());
  EXPECT_EQ(payload.mapped.solver, "exact");
}

TEST(Service, MapJobReportsMapperErrors) {
  Service svc(ServiceOptions{.workers = 1});
  MapJobRequest req;  // empty network: the mapper must refuse, not crash
  auto sub = svc.submit(JobRequest{req});
  const auto res = svc.wait(sub.handle);
  EXPECT_FALSE(res.ok());
}

TEST(Service, ShutdownFailsPendingAndRejectsNew) {
  auto svc = std::make_unique<Service>(
      ServiceOptions{.workers = 1, .queue_capacity = 16});
  auto heavy = svc->submit(heavy_request());
  ASSERT_TRUE(heavy.accepted());
  JpegBlockRequest req;
  req.quant = jpeg::scaled_quant(75);
  auto pending = svc->submit(JobRequest{req});
  ASSERT_TRUE(pending.accepted());

  svc->shutdown();
  auto after = svc->submit(JobRequest{req});
  EXPECT_FALSE(after.accepted());
  EXPECT_EQ(after.handle, nullptr);

  // The queued job either ran before shutdown drained the queue or was
  // failed with a shutdown Status — but it must have completed either way.
  const auto res = svc->wait(pending.handle);
  if (!res.ok()) {
    EXPECT_NE(res.status.message().find("shut down"), std::string::npos);
  }
  svc.reset();  // double-shutdown via the destructor must be safe
}

TEST(Service, InvalidRequestsReportStatusNotCrash) {
  Service svc(ServiceOptions{.workers = 1});
  {
    FftRequest req;
    req.n = 48;  // not a power of two
    req.input.resize(48);
    const auto res = svc.wait(svc.submit(JobRequest{req}).handle);
    EXPECT_FALSE(res.ok());
  }
  {
    FftRequest req;
    req.n = 32;
    req.input.resize(7);  // wrong length
    const auto res = svc.wait(svc.submit(JobRequest{req}).handle);
    EXPECT_FALSE(res.ok());
  }
  {
    JpegImageRequest req;
    req.image.width = 8;
    req.image.height = 8;  // pixels left empty
    const auto res = svc.wait(svc.submit(JobRequest{req}).handle);
    EXPECT_FALSE(res.ok());
  }
  {
    DseSweepRequest req;  // empty network
    const auto res = svc.wait(svc.submit(JobRequest{req}).handle);
    EXPECT_FALSE(res.ok());
  }
}

// ServiceOptions::engine: the same jobs produce bit-identical payloads on
// every execution engine (the fabrics behind the pool differ only in HOW
// they step, never in what they compute).  Jobs are submitted one at a
// time so each is its own batch — per-job cycle counts depend on batch
// position (the head pays the setup epoch), which is scheduling, not
// engine behaviour.
TEST(Service, ResultsBitIdenticalAcrossEngines) {
  const auto quant = jpeg::scaled_quant(75);

  std::vector<JpegBlockJobResult> want;
  for (const auto kind :
       {engine::EngineKind::kInterp, engine::EngineKind::kThreaded,
        engine::EngineKind::kBatch}) {
    ServiceOptions opt{.workers = 1};
    opt.engine = engine::EngineOptions{kind, 4, 0};
    Service svc(opt);
    for (int i = 0; i < 4; ++i) {
      JpegBlockRequest req;
      req.raw = test_block(i);
      req.quant = quant;
      auto sub = svc.submit(JobRequest{req});
      ASSERT_TRUE(sub.accepted()) << sub.status.message();
      const auto res = svc.wait(sub.handle);
      ASSERT_TRUE(res.ok()) << res.status.message();
      const auto& payload = std::get<JpegBlockJobResult>(res.payload);
      if (kind == engine::EngineKind::kInterp) {
        want.push_back(payload);
      } else {
        const auto idx = static_cast<std::size_t>(i);
        EXPECT_EQ(payload.zigzagged, want[idx].zigzagged)
            << "job " << i << " on " << engine::engine_name(kind);
        EXPECT_EQ(payload.cycles, want[idx].cycles)
            << "job " << i << " on " << engine::engine_name(kind);
      }
    }
  }
}

}  // namespace
}  // namespace cgra::service

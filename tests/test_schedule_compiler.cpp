// Schedule-compiler tests: mapped pipelines become executable epoch
// schedules whose cycle-accurate results match the host reference.
#include <gtest/gtest.h>

#include "apps/jpeg/fabric_jpeg.hpp"
#include "common/prng.hpp"
#include "config/reconfig.hpp"
#include "mapping/schedule_compiler.hpp"

namespace cgra::mapping {
namespace {

jpeg::IntBlock random_pixels(std::uint64_t seed) {
  SplitMix64 rng(seed);
  jpeg::IntBlock b{};
  for (auto& v : b) v = static_cast<int>(rng.next_below(256));
  return b;
}

Binding two_groups() {
  Binding b;
  b.groups = {{{0, 1}, 1}, {{2, 3}, 1}};  // {shift, DCT} {quantize, zigzag}
  return b;
}

Placement manual_placement(int rows, int cols, std::vector<int> tiles) {
  Placement p;
  p.mesh_rows = rows;
  p.mesh_cols = cols;
  for (const int t : tiles) p.tile_of.push_back({t});
  return p;
}

/// Compile, load a block, run, and return the zigzag tile's T region.
jpeg::IntBlock run_compiled(const Placement& placement,
                            const std::array<int, 64>& quant,
                            const jpeg::IntBlock& raw,
                            config::ScheduleResult* out_result = nullptr,
                            int zigzag_tile = -1) {
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(quant);
  const auto compiled =
      compile_item_schedule(net, two_groups(), placement, lib);
  EXPECT_TRUE(compiled.ok()) << compiled.status.message();

  fabric::Fabric fab(placement.mesh_rows, placement.mesh_cols);
  const jpeg::JpegLayout lay;
  const int input_tile = placement.tile_of[0][0];
  for (int i = 0; i < 64; ++i) {
    fab.tile(input_tile)
        .set_dmem(lay.x + i, from_signed(raw[static_cast<std::size_t>(i)]));
  }
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  const auto result =
      config::run_schedule(fab, ctrl, compiled.epochs, 10'000'000);
  EXPECT_TRUE(result.ok);
  if (out_result != nullptr) *out_result = result;

  const int out_tile =
      zigzag_tile >= 0 ? zigzag_tile : placement.tile_of[1][0];
  jpeg::IntBlock out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(to_signed(fab.tile(out_tile).dmem(lay.t + i)));
  }
  return out;
}

TEST(ScheduleCompiler, AdjacentGroupsMatchHostReference) {
  const auto quant = jpeg::scaled_quant(50);
  const auto raw = random_pixels(1);
  const auto out = run_compiled(manual_placement(1, 2, {0, 1}), quant, raw);
  EXPECT_EQ(out, jpeg::encode_block_stages(raw, quant));
}

TEST(ScheduleCompiler, MultiHopRouteRelaysThroughTransit) {
  // Groups on tiles 0 and 2 of a 1x3 mesh: the transfer must relay through
  // tile 1's transit region and still produce the right block.
  const auto quant = jpeg::scaled_quant(50);
  const auto raw = random_pixels(2);
  config::ScheduleResult result;
  const auto out =
      run_compiled(manual_placement(1, 3, {0, 2}), quant, raw, &result);
  EXPECT_EQ(out, jpeg::encode_block_stages(raw, quant));
  // Two hop epochs => at least two link reconfigurations paid.
  int link_changes = 0;
  for (const auto& t : result.timeline.transitions) {
    link_changes += t.links_changed;
  }
  EXPECT_GE(link_changes, 2);
}

TEST(ScheduleCompiler, VerticalRouteOnTallMesh) {
  const auto quant = jpeg::scaled_quant(75);
  const auto raw = random_pixels(3);
  const auto out = run_compiled(manual_placement(3, 1, {0, 2}), quant, raw);
  EXPECT_EQ(out, jpeg::encode_block_stages(raw, quant));
}

TEST(ScheduleCompiler, EpochCountMatchesStructure) {
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(jpeg::scaled_quant(50));
  const auto compiled = compile_item_schedule(
      net, two_groups(), manual_placement(1, 3, {0, 2}), lib);
  ASSERT_TRUE(compiled.ok());
  // 4 process epochs + 2 route-hop epochs.
  EXPECT_EQ(compiled.epochs.size(), 6u);
}

TEST(ScheduleCompiler, MissingProgramIsDiagnosed) {
  const auto net = jpeg::jpeg_transform_pipeline();
  auto lib = jpeg::jpeg_program_library(jpeg::scaled_quant(50));
  lib.erase(1);  // drop the DCT implementation
  const auto compiled = compile_item_schedule(
      net, two_groups(), manual_placement(1, 2, {0, 1}), lib);
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status.message().find("DCT"), std::string::npos);
}

TEST(ScheduleCompiler, InTileChainMismatchIsDiagnosed) {
  // A group may list its processes in any order — the dataflow order comes
  // from the edges — but an edge whose endpoints share a tile must agree on
  // where the block lives.
  const auto net = jpeg::jpeg_transform_pipeline();
  auto lib = jpeg::jpeg_program_library(jpeg::scaled_quant(50));
  Binding scrambled;
  scrambled.groups = {{{0, 1, 3, 2}, 1}};
  EXPECT_TRUE(compile_item_schedule(net, scrambled,
                                    manual_placement(1, 1, {0}), lib)
                  .ok());

  lib.at(2).in_base += 1;  // quantize no longer reads where the DCT writes
  const auto compiled = compile_item_schedule(
      net, scrambled, manual_placement(1, 1, {0}), lib);
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status.message().find("chain mismatch"),
            std::string::npos);
}

TEST(ScheduleCompiler, SameTileGroupsRejected) {
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(jpeg::scaled_quant(50));
  Placement p = manual_placement(1, 2, {0, 0});
  const auto compiled =
      compile_item_schedule(net, two_groups(), p, lib);
  EXPECT_FALSE(compiled.ok());  // placement validation: tile placed twice
}

TEST(ScheduleCompiler, SingleGroupNeedsNoRoutes) {
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(jpeg::scaled_quant(50));
  Binding all;
  all.groups = {{{0, 1, 2, 3}, 1}};
  const auto compiled = compile_item_schedule(
      net, all, manual_placement(1, 1, {0}), lib);
  ASSERT_TRUE(compiled.ok()) << compiled.status.message();
  EXPECT_EQ(compiled.epochs.size(), 4u);

  // Run it: the four context switches on one tile still produce the block.
  const auto quant = jpeg::scaled_quant(50);
  const auto raw = random_pixels(4);
  fabric::Fabric fab(1, 1);
  const jpeg::JpegLayout lay;
  for (int i = 0; i < 64; ++i) {
    fab.tile(0).set_dmem(lay.x + i, from_signed(raw[static_cast<std::size_t>(i)]));
  }
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{0.0});
  const auto result =
      config::run_schedule(fab, ctrl, compiled.epochs, 10'000'000);
  ASSERT_TRUE(result.ok);
  jpeg::IntBlock out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(to_signed(fab.tile(0).dmem(lay.t + i)));
  }
  EXPECT_EQ(out, jpeg::encode_block_stages(raw, quant));
}

}  // namespace
}  // namespace cgra::mapping

// FFT kernel program tests: the generated assembly computes correct
// butterflies on a real tile and its footprint fits the memories.
#include <gtest/gtest.h>

#include <complex>

#include "apps/fft/programs.hpp"
#include "apps/fft/reference.hpp"
#include "common/fixed_complex.hpp"
#include "fabric/fabric.hpp"
#include "interconnect/link.hpp"

namespace cgra::fft {
namespace {

TEST(FftPrograms, LayoutRespectsBudget) {
  const auto lay = make_layout(128);
  EXPECT_EQ(lay.x, 0);
  EXPECT_EQ(lay.p, 128);
  EXPECT_EQ(lay.w, 256);
  EXPECT_EQ(lay.ctrl, 384);
  EXPECT_LT(lay.ps, kDataMemWords);
  EXPECT_THROW(make_layout(256), std::invalid_argument);  // 3*256+16 > 512
}

TEST(FftPrograms, KernelsFitInstructionMemory) {
  const auto lay = make_layout(128);
  EXPECT_LE(must_assemble(bf_pair_source(lay)).inst_words(), kInstMemWords);
  EXPECT_LE(must_assemble(bf_local_source(lay, 16)).inst_words(),
            kInstMemWords);
  EXPECT_LE(must_assemble(copy_loop_source(lay, 128, 0, 0, true)).inst_words(),
            kInstMemWords);
}

/// Run the pair kernel on one tile for M=8 and compare each butterfly with
/// double-precision arithmetic.
TEST(FftPrograms, PairKernelComputesButterflies) {
  const int m = 8;
  const auto lay = make_layout(m);
  fabric::Fabric fab(1, 1);
  auto& tile = fab.tile(0);
  ASSERT_TRUE(tile.load_program(must_assemble(bf_pair_source(lay))));

  std::vector<std::complex<double>> a(m), w(m / 2);
  for (int i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i)] = {0.1 * i - 0.3, 0.05 * i};
    tile.set_dmem(lay.x + i, pack_complex(to_fixed(a[static_cast<std::size_t>(i)])));
  }
  for (int k = 0; k < m / 2; ++k) {
    w[static_cast<std::size_t>(k)] = twiddle(16, static_cast<std::size_t>(k));
    tile.set_dmem(lay.w + k, pack_complex(to_fixed(w[static_cast<std::size_t>(k)])));
  }
  tile.restart();
  const auto run = fab.run(100000);
  ASSERT_TRUE(run.ok());

  for (int k = 0; k < m / 2; ++k) {
    const auto sum = a[static_cast<std::size_t>(k)] +
                     a[static_cast<std::size_t>(k + m / 2)];
    const auto diff = (a[static_cast<std::size_t>(k)] -
                       a[static_cast<std::size_t>(k + m / 2)]) *
                      w[static_cast<std::size_t>(k)];
    const auto got_sum = to_double(unpack_complex(tile.dmem(lay.x + k)));
    const auto got_diff =
        to_double(unpack_complex(tile.dmem(lay.x + k + m / 2)));
    EXPECT_NEAR(std::abs(got_sum - sum), 0.0, 1e-4) << k;
    EXPECT_NEAR(std::abs(got_diff - diff), 0.0, 1e-4) << k;
  }
}

/// The stride kernel with H=2 on M=8 does groups {0..3} and {4..7}.
TEST(FftPrograms, LocalKernelStridePattern) {
  const int m = 8;
  const int h = 2;
  const auto lay = make_layout(m);
  fabric::Fabric fab(1, 1);
  auto& tile = fab.tile(0);
  ASSERT_TRUE(tile.load_program(must_assemble(bf_local_source(lay, h))));

  std::vector<std::complex<double>> a(m);
  for (int i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i)] = {0.2 * i - 0.7, -0.1 * i + 0.4};
    tile.set_dmem(lay.x + i, pack_complex(to_fixed(a[static_cast<std::size_t>(i)])));
  }
  std::vector<std::complex<double>> w(h);
  for (int k = 0; k < h; ++k) {
    w[static_cast<std::size_t>(k)] = twiddle(8, static_cast<std::size_t>(2 * k));
    tile.set_dmem(lay.w + k, pack_complex(to_fixed(w[static_cast<std::size_t>(k)])));
  }
  tile.restart();
  ASSERT_TRUE(fab.run(100000).ok());

  for (int g = 0; g < m / (2 * h); ++g) {
    for (int j = 0; j < h; ++j) {
      const int ia = g * 2 * h + j;
      const int ib = ia + h;
      const auto sum = a[static_cast<std::size_t>(ia)] + a[static_cast<std::size_t>(ib)];
      const auto diff = (a[static_cast<std::size_t>(ia)] -
                         a[static_cast<std::size_t>(ib)]) *
                        w[static_cast<std::size_t>(j)];
      EXPECT_NEAR(std::abs(to_double(unpack_complex(tile.dmem(lay.x + ia))) - sum),
                  0.0, 1e-4);
      EXPECT_NEAR(
          std::abs(to_double(unpack_complex(tile.dmem(lay.x + ib))) - diff),
          0.0, 1e-4);
    }
  }
}

TEST(FftPrograms, CopyLoopStreamsToNeighbor) {
  const int m = 8;
  const auto lay = make_layout(m);
  fabric::Fabric fab(2, 1);
  fab.links().set_output(0, interconnect::Direction::kSouth);
  auto& src = fab.tile(0);
  ASSERT_TRUE(src.load_program(
      must_assemble(copy_loop_source(lay, m, lay.x, lay.p, true))));
  for (int i = 0; i < m; ++i) src.set_dmem(lay.x + i, static_cast<Word>(i * 3 + 1));
  src.restart();
  ASSERT_TRUE(fab.run(10000).ok());
  for (int i = 0; i < m; ++i) {
    EXPECT_EQ(fab.tile(1).dmem(lay.p + i), static_cast<Word>(i * 3 + 1)) << i;
  }
}

TEST(FftPrograms, CopyLoopRetargetableViaPatches) {
  // Table 2's optimisation: retarget source/destination with two data
  // patches instead of reloading the program.
  const int m = 8;
  const auto lay = make_layout(m);
  fabric::Fabric fab(2, 1);
  fab.links().set_output(0, interconnect::Direction::kSouth);
  auto& src = fab.tile(0);
  ASSERT_TRUE(src.load_program(
      must_assemble(copy_loop_source(lay, 4, lay.x, lay.p, true))));
  for (int i = 0; i < m; ++i) src.set_dmem(lay.x + i, static_cast<Word>(100 + i));
  src.restart();
  ASSERT_TRUE(fab.run(10000).ok());

  // Re-run the resident loop with new pointers: skip the first three init
  // instructions by restarting at the loop body after patching variables.
  const std::vector<isa::DataPatch> retarget = {
      {lay.ps, static_cast<Word>(lay.x + 4)},
      {lay.pb, static_cast<Word>(lay.p + 4)},
      {lay.cnt_j, 4}};
  ASSERT_TRUE(src.patch_data(retarget));
  src.restart(3);  // loop: label
  ASSERT_TRUE(fab.run(10000).ok());
  EXPECT_EQ(fab.tile(1).dmem(lay.p + 4), 104u);
  EXPECT_EQ(fab.tile(1).dmem(lay.p + 7), 107u);
}

TEST(FftPrograms, StraightCopyLocalAndRemote) {
  fabric::Fabric fab(1, 2);
  fab.links().set_output(0, interconnect::Direction::kEast);
  auto& t0 = fab.tile(0);
  const std::vector<std::pair<int, int>> remote = {{0, 10}, {1, 11}};
  ASSERT_TRUE(t0.load_program(must_assemble(copy_straight_source(remote, true))));
  t0.set_dmem(0, 5);
  t0.set_dmem(1, 6);
  t0.restart();
  ASSERT_TRUE(fab.run(1000).ok());
  EXPECT_EQ(fab.tile(1).dmem(10), 5u);
  EXPECT_EQ(fab.tile(1).dmem(11), 6u);
}

TEST(FftPrograms, CopyLoopFootprintIsNineInstructions) {
  // 3 pointer/counter initialisations + 5-instruction loop body + halt:
  // the compact footprint that makes the vcp/hcp processes cheap to pin.
  const auto lay = make_layout(128);
  const auto prog = must_assemble(copy_loop_source(lay, 64, lay.x, lay.p, true));
  EXPECT_EQ(prog.inst_words(), 9);
}

}  // namespace
}  // namespace cgra::fft

// Chaos-hardening tests: every Hook in src/chaos/chaos.hpp is exercised
// at least once against the real serving stack, and the robustness
// machinery it targets — deadline propagation, idempotent reply dedup,
// worker crash-resume, lease retry, circuit breaking, structured close
// reasons — is asserted to keep results bit-identical to a calm run.
// Labelled `chaos` in CMake; runs under asan and tsan presets in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "cgra/chaos.hpp"
#include "cgra/net.hpp"

namespace cgra::chaos {
namespace {

using net::CallOptions;
using net::Client;
using net::ClientOptions;
using net::HealthInfo;
using net::MsgType;
using net::Server;
using net::ServerOptions;

jpeg::IntBlock test_block(int seed) {
  jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 1) * 37 + i * 13) % 256;
  }
  return raw;
}

service::JobRequest block_request(int seed, int quality = 75) {
  service::JpegBlockRequest req;
  req.raw = test_block(seed);
  req.quant = jpeg::scaled_quant(quality);
  return service::JobRequest{req};
}

service::JobRequest fft_request(int n, int seed) {
  service::FftRequest req;
  req.n = n;
  req.m = 8;
  req.input.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    req.input[static_cast<std::size_t>(i)] = {
        std::cos(0.1 * (i + seed)) / n, std::sin(0.07 * i - seed) / n};
  }
  return service::JobRequest{req};
}

/// A request the single worker chews on long enough for a queued
/// deadline to expire behind it.
service::JobRequest heavy_request() {
  service::JpegImageRequest req;
  req.image = jpeg::synthetic_image(96, 96, 1);
  req.quality = 50;
  return service::JobRequest{req};
}

/// Service + server + client factory with chaos injectors threaded
/// through every layer that accepts one.
struct ChaosRig {
  explicit ChaosRig(ChaosInjector* server_chaos = nullptr,
                    ChaosInjector* service_chaos = nullptr,
                    service::ServiceOptions sopt = {.workers = 2},
                    ServerOptions nopt = {})
      : svc([&] {
          sopt.chaos = service_chaos;
          return sopt;
        }()),
        server(&svc, [&] {
          nopt.chaos = server_chaos;
          return nopt;
        }()) {
    const auto s = server.start();
    EXPECT_TRUE(s.ok()) << s.message();
  }
  [[nodiscard]] Client client(ChaosInjector* client_chaos = nullptr,
                              int max_retries = 3) {
    ClientOptions copt;
    copt.port = server.port();
    copt.max_retries = max_retries;
    copt.retry_backoff_ms = 10;
    copt.chaos = client_chaos;
    return Client(copt);
  }
  service::Service svc;
  Server server;
};

/// Poll a service counter until it reaches `target` (bounded): lets a
/// test wait for the server's reader thread to land a submit before
/// asserting on it.
bool wait_counter(const service::Service& svc, const char* name,
                  std::int64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.counter(name) < target) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// --- plan / injector determinism ----------------------------------------

TEST(ChaosPlan, FiringScheduleIsDeterministic) {
  ChaosPlan plan;
  plan.fail(Hook::kPoolLease, /*first=*/3, /*count=*/2, /*every=*/2);
  ChaosInjector inj(plan);
  std::vector<std::int64_t> fired_at;
  for (std::int64_t n = 1; n <= 10; ++n) {
    if (inj.decide(Hook::kPoolLease)) fired_at.push_back(n);
  }
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{3, 5}));
  EXPECT_EQ(inj.invocations(Hook::kPoolLease), 10);
  EXPECT_EQ(inj.fired(Hook::kPoolLease), 2);
  EXPECT_EQ(inj.fired_total(), 2);

  // Same plan, fresh injector: identical salts draw identical randoms.
  ChaosInjector a(plan);
  ChaosInjector b(plan);
  for (std::int64_t n = 1; n <= 5; ++n) {
    const Decision da = a.decide(Hook::kPoolLease);
    const Decision db = b.decide(Hook::kPoolLease);
    EXPECT_EQ(da.action, db.action);
    EXPECT_EQ(da.salt, db.salt);
  }
}

TEST(ChaosPlan, ConsecutiveFiringWithEveryZero) {
  ChaosPlan plan;
  plan.reset(Hook::kClientRecv, /*first=*/2, /*count=*/3);
  ChaosInjector inj(plan);
  std::vector<std::int64_t> fired_at;
  for (std::int64_t n = 1; n <= 6; ++n) {
    if (inj.decide(Hook::kClientRecv)) fired_at.push_back(n);
  }
  EXPECT_EQ(fired_at, (std::vector<std::int64_t>{2, 3, 4}));
}

TEST(ChaosPlan, MutateFrameIsSeededAndBounded) {
  std::vector<std::uint8_t> original(32);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i);
  }

  Decision corrupt;
  corrupt.action = Action::kCorruptByte;
  corrupt.a = -1;  // seeded position
  corrupt.salt = 0xABCDEFu;
  auto x = original;
  auto y = original;
  ASSERT_TRUE(mutate_frame(corrupt, &x));
  ASSERT_TRUE(mutate_frame(corrupt, &y));
  EXPECT_EQ(x, y);       // same salt, same mutation
  EXPECT_NE(x, original);

  Decision trunc;
  trunc.action = Action::kTruncate;
  trunc.a = 5;
  auto z = original;
  ASSERT_TRUE(mutate_frame(trunc, &z));
  ASSERT_EQ(z.size(), 5u);
  EXPECT_TRUE(std::equal(z.begin(), z.end(), original.begin()));

  Decision none;
  none.action = Action::kDelay;
  auto w = original;
  EXPECT_FALSE(mutate_frame(none, &w));
  EXPECT_EQ(w, original);
}

// --- socket-level hooks --------------------------------------------------

TEST(ChaosNet, ClientConnectFailureIsRetried) {
  ChaosRig rig;
  ChaosPlan plan;
  plan.fail(Hook::kClientConnect, /*first=*/1);
  ChaosInjector inj(plan);
  auto client = rig.client(&inj);
  const auto s = client.ping();
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(inj.fired(Hook::kClientConnect), 1);
  EXPECT_GE(client.connect_attempts(), 2);
}

TEST(ChaosNet, AcceptFailureRefusesThenRecovers) {
  ChaosPlan plan;
  plan.fail(Hook::kAccept, /*first=*/1);
  ChaosInjector inj(plan);
  ChaosRig rig(&inj);
  auto client = rig.client();
  // First accept is injected away; the client's transport retry opens a
  // second connection which goes through.
  const auto s = client.ping();
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(inj.fired(Hook::kAccept), 1);
  EXPECT_GE(rig.server.counter("net.connections.refused"), 1);
}

TEST(ChaosNet, ServerReadResetClosesWithChaosReason) {
  ChaosPlan plan;
  plan.reset(Hook::kServerRead, /*first=*/2);
  ChaosInjector inj(plan);
  ChaosRig rig(&inj);
  {
    auto client = rig.client();
    // The reader's second pass hits the injected reset and tears the
    // whole connection down — racing the writer, so the first pong may
    // die with it.  Ping is idempotent: transport retry reconnects and
    // both calls come back ok either way.
    EXPECT_TRUE(client.ping().ok());
    EXPECT_TRUE(client.ping().ok());
    EXPECT_GE(client.connect_attempts(), 2);
  }
  rig.server.stop();
  EXPECT_EQ(inj.fired(Hook::kServerRead), 1);
  EXPECT_EQ(rig.server.counter("net.conn_closed.chaos"), 1);
}

TEST(ChaosNet, ClientRecvResetRetriesIdempotently) {
  ChaosRig rig;
  ChaosPlan plan;
  plan.reset(Hook::kClientRecv, /*first=*/1);
  ChaosInjector inj(plan);
  auto client = rig.client(&inj);
  // Ping is idempotent: the injected post-send reset is retried.
  const auto s = client.ping();
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(inj.fired(Hook::kClientRecv), 1);
}

TEST(ChaosNet, ServerWritePartialWriteBreaksConnection) {
  ChaosPlan plan;
  // Deliver 4 bytes of the pong, then fail the write.
  plan.partial_write(/*bytes=*/4, /*first=*/1);
  ChaosInjector inj(plan);
  ChaosRig rig(&inj);
  {
    auto client = rig.client(nullptr, /*max_retries=*/0);
    EXPECT_FALSE(client.ping().ok());
  }
  rig.server.stop();
  EXPECT_EQ(inj.fired(Hook::kServerWrite), 1);
  EXPECT_EQ(rig.server.counter("net.conn_closed.chaos"), 1);
  // A fresh server is unaffected — the partial write poisoned only the
  // one connection.
}

TEST(ChaosNet, ServerFrameCorruptionIsSurvivedByRetry) {
  ChaosPlan plan;
  plan.corrupt_byte(Hook::kServerFrame, /*index=*/0, /*mask=*/0xFF,
                    /*first=*/1);
  ChaosInjector inj(plan);
  ChaosRig rig(&inj);
  auto client = rig.client();
  // The first pong goes out with its magic destroyed; the client rejects
  // it, reconnects, and the retry's reply is clean.
  const auto s = client.ping();
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(inj.fired(Hook::kServerFrame), 1);
}

// --- protocol fuzz (satellite: frame corruption sweeps) ------------------

/// Every single-byte corruption of a job request's header, and a sweep
/// of truncation lengths, must leave the server alive and in-order: the
/// chaotic client fails or recovers, and a follow-up clean request on a
/// fresh connection round-trips correctly.
TEST(ChaosFuzz, CorruptedRequestHeaderNeverKillsServer) {
  ChaosRig rig;
  const auto job = fft_request(32, 1);
  const auto reference = fft::run_fabric_fft(
      fft::make_geometry(32, 8), std::get<service::FftRequest>(job).input);
  ASSERT_TRUE(reference.status.ok());

  for (std::int64_t index = 0;
       index < static_cast<std::int64_t>(net::kHeaderSize); ++index) {
    ChaosPlan plan;
    plan.corrupt_byte(Hook::kClientFrame, index, /*mask=*/0xA5, /*first=*/1);
    ChaosInjector inj(plan);
    ClientOptions copt;
    copt.port = rig.server.port();
    // A corrupted length can leave the server waiting for bytes that
    // never come; a short reply timeout bounds each sweep step.
    copt.request_timeout_ms = 300;
    copt.max_retries = 1;
    copt.retry_backoff_ms = 10;
    copt.chaos = &inj;
    Client chaotic(copt);
    net::Response resp;
    // Either the retry recovers (clean second send) or the call fails;
    // what matters is the server survives and stays coherent.
    (void)chaotic.call(job, &resp);
    EXPECT_EQ(inj.fired(Hook::kClientFrame), 1) << "index " << index;

    auto clean = rig.client();
    net::Response check;
    const auto s = clean.call(job, &check);
    ASSERT_TRUE(s.ok()) << "index " << index << ": " << s.message();
    ASSERT_TRUE(check.result.status.ok()) << check.result.status.message();
    EXPECT_EQ(std::get<service::FftJobResult>(check.result.payload).output,
              reference.output)
        << "index " << index;
  }
}

TEST(ChaosFuzz, TruncatedFramesNeverKillServer) {
  ChaosRig rig;
  const auto job = block_request(7);
  const auto expected = jpeg::encode_block_stages(
      test_block(7), jpeg::scaled_quant(75));

  // A sweep of keep-lengths: mid-header, exactly a header, mid-payload.
  for (const std::int64_t keep : {0, 3, 11, 12, 13, 40}) {
    ChaosPlan plan;
    plan.truncate(Hook::kClientFrame, keep, /*first=*/1);
    ChaosInjector inj(plan);
    {
      // A truncated frame either times out (server waits for the rest)
      // or errors; bound the damage with a short timeout.
      ClientOptions copt;
      copt.port = rig.server.port();
      copt.request_timeout_ms = 200;
      copt.max_retries = 0;
      copt.chaos = &inj;
      Client bounded(copt);
      net::Response resp;
      (void)bounded.call(job, &resp);
      EXPECT_EQ(inj.fired(Hook::kClientFrame), 1) << "keep " << keep;
    }
    auto clean = rig.client();
    net::Response check;
    const auto s = clean.call(job, &check);
    ASSERT_TRUE(s.ok()) << "keep " << keep << ": " << s.message();
    ASSERT_TRUE(check.result.status.ok()) << check.result.status.message();
    EXPECT_EQ(std::get<service::JpegBlockJobResult>(check.result.payload)
                  .zigzagged,
              expected)
        << "keep " << keep;
  }
}

/// v3 job payloads carry the trace context at frame bytes 32..47.  Flip
/// every one of those bytes, and truncate the frame at boundaries that
/// land inside the context: the server must survive each, and a clean
/// follow-up request must still round-trip bit-identically.  (A flipped
/// trace byte is semantically harmless — it only renames the trace — so
/// the chaotic call itself usually succeeds.)
TEST(ChaosFuzz, CorruptedTraceContextNeverKillsServer) {
  ChaosRig rig;
  const auto job = fft_request(32, 2);
  const auto reference = fft::run_fabric_fft(
      fft::make_geometry(32, 8), std::get<service::FftRequest>(job).input);
  ASSERT_TRUE(reference.status.ok());

  for (std::int64_t index = 32; index <= 47; ++index) {
    ChaosPlan plan;
    plan.corrupt_byte(Hook::kClientFrame, index, /*mask=*/0xA5, /*first=*/1);
    ChaosInjector inj(plan);
    ClientOptions copt;
    copt.port = rig.server.port();
    copt.request_timeout_ms = 300;
    copt.max_retries = 1;
    copt.retry_backoff_ms = 10;
    copt.chaos = &inj;
    Client chaotic(copt);
    net::Response resp;
    (void)chaotic.call(job, &resp);
    EXPECT_EQ(inj.fired(Hook::kClientFrame), 1) << "index " << index;

    auto clean = rig.client();
    net::Response check;
    const auto s = clean.call(job, &check);
    ASSERT_TRUE(s.ok()) << "index " << index << ": " << s.message();
    ASSERT_TRUE(check.result.status.ok()) << check.result.status.message();
    EXPECT_EQ(std::get<service::FftJobResult>(check.result.payload).output,
              reference.output)
        << "index " << index;
  }

  // Truncations ending inside (and one byte short of) the context.
  for (const std::int64_t keep : {32, 36, 40, 44, 47}) {
    ChaosPlan plan;
    plan.truncate(Hook::kClientFrame, keep, /*first=*/1);
    ChaosInjector inj(plan);
    {
      ClientOptions copt;
      copt.port = rig.server.port();
      copt.request_timeout_ms = 200;
      copt.max_retries = 0;
      copt.chaos = &inj;
      Client bounded(copt);
      net::Response resp;
      (void)bounded.call(job, &resp);
      EXPECT_EQ(inj.fired(Hook::kClientFrame), 1) << "keep " << keep;
    }
    auto clean = rig.client();
    net::Response check;
    const auto s = clean.call(job, &check);
    ASSERT_TRUE(s.ok()) << "keep " << keep << ": " << s.message();
    ASSERT_TRUE(check.result.status.ok()) << check.result.status.message();
    EXPECT_EQ(std::get<service::FftJobResult>(check.result.payload).output,
              reference.output)
        << "keep " << keep;
  }
}

// --- deadline propagation ------------------------------------------------

TEST(ChaosDeadline, ExpiredDeadlineSurfacesOverTheWire) {
  ChaosRig rig(nullptr, nullptr, {.workers = 1});
  auto blocker = rig.client();
  std::uint64_t blocker_id = 0;
  // Park the single worker on a heavy job, then race a 1 ms deadline
  // against it.
  ASSERT_TRUE(blocker.send(heavy_request(), &blocker_id).ok());
  // Make sure the heavy job reached the queue first.
  ASSERT_TRUE(wait_counter(rig.svc, "service.jobs.submitted", 1));

  auto client = rig.client();
  net::Response resp;
  CallOptions copt;
  copt.deadline_ms = 1;
  const auto s = client.call(fft_request(32, 2), &resp, copt);
  ASSERT_TRUE(s.ok()) << s.message();
  ASSERT_EQ(resp.type, MsgType::kError);
  EXPECT_EQ(resp.result.status.code(), StatusCode::kDeadlineExceeded)
      << resp.result.status.message();
  EXPECT_GE(rig.svc.counter("service.jobs.deadline_expired"), 1);
  EXPECT_GE(rig.server.counter("net.deadline.submits"), 1);

  net::Response drain;
  ASSERT_TRUE(blocker.receive(&drain).ok());
}

// --- idempotency / retry safety ------------------------------------------

TEST(ChaosIdempotency, RetryAfterRecvResetDeduplicates) {
  ChaosRig rig;
  ChaosPlan plan;
  plan.reset(Hook::kClientRecv, /*first=*/1);
  ChaosInjector inj(plan);
  // A generous backoff gives the server's reader time to land the first
  // submit before the retry arrives, so the dedup hit is deterministic.
  ClientOptions copt_client;
  copt_client.port = rig.server.port();
  copt_client.retry_backoff_ms = 200;
  copt_client.chaos = &inj;
  Client client(copt_client);

  net::Response resp;
  CallOptions copt;
  copt.idempotency_id = 42;
  const auto s = client.call(block_request(3), &resp, copt);
  ASSERT_TRUE(s.ok()) << s.message();
  ASSERT_TRUE(resp.result.status.ok()) << resp.result.status.message();
  EXPECT_EQ(std::get<service::JpegBlockJobResult>(resp.result.payload)
                .zigzagged,
            jpeg::encode_block_stages(test_block(3), jpeg::scaled_quant(75)));
  // The retry hit the reply cache: one submit, one dedup hit.
  EXPECT_EQ(rig.svc.counter("service.jobs.submitted"), 1);
  EXPECT_EQ(rig.server.counter("net.idempotent.hits"), 1);
}

TEST(ChaosIdempotency, NonIdempotentPostSendFailureIsUnknownOutcome) {
  ChaosRig rig;
  ChaosPlan plan;
  plan.reset(Hook::kClientRecv, /*first=*/1, /*count=*/5);
  ChaosInjector inj(plan);
  auto client = rig.client(&inj);

  net::Response resp;
  const auto s = client.call(block_request(4), &resp);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnknownOutcome) << s.message();
  // No blind resend: the server saw exactly one submit.
  EXPECT_EQ(inj.fired(Hook::kClientRecv), 1);
  ASSERT_TRUE(wait_counter(rig.svc, "service.jobs.submitted", 1));
  EXPECT_EQ(rig.svc.counter("service.jobs.submitted"), 1);
}

// --- circuit breaker ------------------------------------------------------

TEST(ChaosBreaker, OpensFailsFastAndRecloses) {
  ChaosRig rig;
  ChaosPlan plan;
  plan.fail(Hook::kClientConnect, /*first=*/1, /*count=*/2);
  ChaosInjector inj(plan);
  ClientOptions copt;
  copt.port = rig.server.port();
  copt.max_retries = 0;
  copt.breaker_threshold = 2;
  copt.breaker_cooldown_ms = 100;
  copt.chaos = &inj;
  Client client(copt);

  EXPECT_FALSE(client.ping().ok());
  EXPECT_FALSE(client.ping().ok());
  EXPECT_TRUE(client.breaker_open());

  // Open: fails fast without another connect attempt.
  const int attempts = client.connect_attempts();
  const auto fast = client.ping();
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.code(), StatusCode::kUnavailable) << fast.message();
  EXPECT_EQ(client.connect_attempts(), attempts);

  // Cooldown passes; the half-open probe (chaos exhausted) succeeds and
  // closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto probe = client.ping();
  EXPECT_TRUE(probe.ok()) << probe.message();
  EXPECT_FALSE(client.breaker_open());
}

// --- health & close reasons ----------------------------------------------

TEST(ChaosHealth, HealthFrameReportsReadiness) {
  ChaosRig rig(nullptr, nullptr, {.workers = 3, .queue_capacity = 17});
  auto client = rig.client();
  HealthInfo info;
  const auto s = client.health(&info);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(info.accepting);
  EXPECT_EQ(info.workers, 3u);
  EXPECT_EQ(info.queue_capacity, 17u);
  EXPECT_GE(info.connections, 1u);
}

TEST(ChaosCloseReasons, PeerEofAndIdleTimeoutAreAttributed) {
  ServerOptions nopt;
  nopt.idle_timeout_ms = 100;
  ChaosRig rig(nullptr, nullptr, {.workers = 1}, nopt);
  {
    auto client = rig.client();
    ASSERT_TRUE(client.ping().ok());
  }  // clean close -> peer_eof
  {
    auto idle = rig.client();
    ASSERT_TRUE(idle.ping().ok());
    // Hold the connection open past the idle timeout without a frame.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  rig.server.stop();
  EXPECT_GE(rig.server.counter("net.conn_closed.peer_eof") +
                rig.server.counter("net.conn_closed.idle_timeout"),
            2);
  EXPECT_GE(rig.server.counter("net.conn_closed.idle_timeout"), 1);
  EXPECT_EQ(rig.server.counter("net.connections.closed"),
            rig.server.counter("net.conn_closed.peer_eof") +
                rig.server.counter("net.conn_closed.idle_timeout") +
                rig.server.counter("net.conn_closed.drain"));
}

// --- service-level hooks --------------------------------------------------

TEST(ChaosService, WorkerCrashResumesJobsOnReplacement) {
  ChaosPlan plan;
  plan.crash_worker(/*first=*/1);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  std::vector<service::JobHandle> jobs;
  for (int i = 0; i < 3; ++i) {
    auto sub = svc.submit(block_request(i));
    ASSERT_TRUE(sub.accepted()) << sub.status.message();
    jobs.push_back(sub.handle);
  }
  for (int i = 0; i < 3; ++i) {
    const auto res = svc.wait(jobs[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(res.ok()) << "job " << i << ": " << res.status.message();
    EXPECT_EQ(std::get<service::JpegBlockJobResult>(res.payload).zigzagged,
              jpeg::encode_block_stages(test_block(i), jpeg::scaled_quant(75)));
  }
  EXPECT_EQ(inj.fired(Hook::kWorkerCrash), 1);
  EXPECT_EQ(svc.counter("service.worker.crashes"), 1);
  EXPECT_EQ(svc.counter("service.jobs.completed"), 3);
}

TEST(ChaosService, PoolLeaseFailureIsRetried) {
  ChaosPlan plan;
  plan.fail(Hook::kPoolLease, /*first=*/1);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  auto sub = svc.submit(block_request(5));
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  EXPECT_EQ(std::get<service::JpegBlockJobResult>(res.payload).zigzagged,
            jpeg::encode_block_stages(test_block(5), jpeg::scaled_quant(75)));
  EXPECT_EQ(inj.fired(Hook::kPoolLease), 1);
  EXPECT_EQ(svc.counter("service.lease.retries"), 1);
}

TEST(ChaosService, CachePoisonForcesIdenticalRebuild) {
  ChaosPlan plan;
  // Poison every cache lookup: each batch rebuilds its artifacts.
  plan.fail(Hook::kCachePoison, /*first=*/1, /*count=*/1000);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  auto a = svc.submit(block_request(6));
  ASSERT_TRUE(a.accepted());
  const auto ra = svc.wait(a.handle);
  auto b = svc.submit(block_request(6));
  ASSERT_TRUE(b.accepted());
  const auto rb = svc.wait(b.handle);
  ASSERT_TRUE(ra.ok()) << ra.status.message();
  ASSERT_TRUE(rb.ok()) << rb.status.message();
  EXPECT_EQ(std::get<service::JpegBlockJobResult>(ra.payload).zigzagged,
            std::get<service::JpegBlockJobResult>(rb.payload).zigzagged);
  EXPECT_EQ(std::get<service::JpegBlockJobResult>(ra.payload).zigzagged,
            jpeg::encode_block_stages(test_block(6), jpeg::scaled_quant(75)));
  EXPECT_GE(inj.fired(Hook::kCachePoison), 2);
}

TEST(ChaosService, QueueStallDelaysButCompletes) {
  ChaosPlan plan;
  plan.delay_ms(Hook::kQueueStall, /*ms=*/50, /*first=*/1);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  auto sub = svc.submit(fft_request(32, 9));
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  EXPECT_EQ(inj.fired(Hook::kQueueStall), 1);
}

TEST(ChaosService, FabricPoisonOnPlainPathRecoversByRelease) {
  ChaosPlan plan;
  plan.kill_tile(/*tile=*/1, /*cycle=*/0, /*first=*/1);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  auto sub = svc.submit(block_request(8));
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  EXPECT_EQ(std::get<service::JpegBlockJobResult>(res.payload).zigzagged,
            jpeg::encode_block_stages(test_block(8), jpeg::scaled_quant(75)));
  EXPECT_EQ(inj.fired(Hook::kFabricPoison), 1);
}

TEST(ChaosService, FabricPoisonMidEpochRebalancesResilientJob) {
  // Satellite: kill a pooled fabric tile mid-epoch through the injector;
  // the RecoveryManager must rebalance onto survivors and the output
  // must stay bit-identical to the host reference.
  ChaosPlan plan;
  plan.kill_tile(/*tile=*/3, /*cycle=*/40, /*first=*/1);
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  const auto quant = jpeg::scaled_quant(50);
  const auto raw = test_block(11);
  service::JpegBlockRequest req;
  req.raw = raw;
  req.quant = quant;
  // A non-empty plan routes the job down the resilient pooled-mesh path;
  // the chaos kill is appended to this per-job plan.
  req.plan.corrupt_icap(0, 1);
  req.policy.max_icap_retries = 3;

  auto sub = svc.submit(service::JobRequest{req});
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  const auto& payload = std::get<service::JpegBlockJobResult>(res.payload);
  EXPECT_EQ(payload.zigzagged, jpeg::encode_block_stages(raw, quant));
  EXPECT_TRUE(payload.recovered);
  EXPECT_EQ(inj.fired(Hook::kFabricPoison), 1);
}

TEST(ChaosService, FabricPoisonOnFftPathRecovers) {
  ChaosPlan plan;
  plan.kill_tile(/*tile=*/-1, /*cycle=*/0, /*first=*/1);  // seeded tile
  ChaosInjector inj(plan);
  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.chaos = &inj;
  service::Service svc(sopt);

  const auto job = fft_request(64, 13);
  const auto reference = fft::run_fabric_fft(
      fft::make_geometry(64, 8), std::get<service::FftRequest>(job).input);
  ASSERT_TRUE(reference.status.ok());

  auto sub = svc.submit(job);
  ASSERT_TRUE(sub.accepted());
  const auto res = svc.wait(sub.handle);
  ASSERT_TRUE(res.ok()) << res.status.message();
  EXPECT_EQ(std::get<service::FftJobResult>(res.payload).output,
            reference.output);
  EXPECT_EQ(inj.fired(Hook::kFabricPoison), 1);
}

// --- metrics wiring -------------------------------------------------------

TEST(ChaosObs, FiredCountersLandInAttachedRegistry) {
  obs::MetricsRegistry metrics;
  ChaosPlan plan;
  plan.fail(Hook::kPoolLease, /*first=*/1, /*count=*/2, /*every=*/1);
  ChaosInjector inj(plan);
  inj.attach_metrics(&metrics);
  (void)inj.decide(Hook::kPoolLease);
  (void)inj.decide(Hook::kPoolLease);
  (void)inj.decide(Hook::kPoolLease);
  EXPECT_EQ(metrics.counter_value("chaos.fired.pool_lease"), 2);
}

}  // namespace
}  // namespace cgra::chaos

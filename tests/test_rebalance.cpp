// Rebalancing algorithm tests: Algorithm 1/2 behaviour, optimal partition
// DP, and the monotonicity / dominance properties the paper relies on.
#include <gtest/gtest.h>

#include "mapping/rebalance.hpp"

namespace cgra::mapping {
namespace {

using procnet::Process;
using procnet::ProcessNetwork;

Process make(const std::string& name, std::int64_t runtime,
             bool replicable = true) {
  Process p;
  p.name = name;
  p.runtime_cycles = runtime;
  p.insts = 10;
  p.replicable = replicable;
  return p;
}

/// The paper's Figure-13 example: five processes, 3200 ns on one tile
/// (runtimes here in cycles; 2.5 ns each).
ProcessNetwork fig13_net() {
  return ProcessNetwork::pipeline({make("p1", 440), make("p2", 320),
                                   make("p3", 160), make("p4", 200),
                                   make("p5", 160)},
                                  16);
}

double makespan_ns(const ProcessNetwork& net, const Binding& b) {
  return evaluate(net, b, CostParams{}).ii_ns;
}

TEST(RebalanceOne, OneTileHostsEverything) {
  const auto net = fig13_net();
  const auto b = rebalance(net, 1, RebalanceAlgorithm::kOne, CostParams{});
  EXPECT_EQ(b.tile_count(), 1);
  EXPECT_TRUE(b.validate(net).ok());
}

TEST(RebalanceOne, SplitsHeaviestTile) {
  const auto net = fig13_net();
  const auto b = rebalance(net, 2, RebalanceAlgorithm::kOne, CostParams{});
  EXPECT_EQ(b.tile_count(), 2);
  EXPECT_TRUE(b.validate(net).ok());
  // The split must reduce the makespan versus one tile.
  const auto one = rebalance(net, 1, RebalanceAlgorithm::kOne, CostParams{});
  EXPECT_LT(makespan_ns(net, b), makespan_ns(net, one));
}

TEST(RebalanceOne, ReplicatesSingleHeavyProcess) {
  // One dominant process: extra tiles become replicas (Fig. 13 case d->e).
  ProcessNetwork net = ProcessNetwork::pipeline(
      {make("light", 100), make("heavy", 1000)}, 16);
  const auto b = rebalance(net, 4, RebalanceAlgorithm::kOne, CostParams{});
  EXPECT_EQ(b.tile_count(), 4);
  bool replicated = false;
  for (const auto& g : b.groups) {
    if (g.replication > 1) {
      replicated = true;
      EXPECT_EQ(g.procs.size(), 1u);
      EXPECT_EQ(net.process(g.procs[0]).name, "heavy");
    }
  }
  EXPECT_TRUE(replicated);
}

TEST(RebalanceOne, RespectsNonReplicableProcesses) {
  ProcessNetwork net = ProcessNetwork::pipeline(
      {make("a", 100), make("heavy", 1000, /*replicable=*/false)}, 16);
  const auto b = rebalance(net, 5, RebalanceAlgorithm::kOne, CostParams{});
  EXPECT_TRUE(b.validate(net).ok());
  for (const auto& g : b.groups) {
    if (g.procs.size() == 1 && net.process(g.procs[0]).name == "heavy") {
      EXPECT_EQ(g.replication, 1);
    }
  }
  // Budget cannot be filled: only 2 useful tiles exist.
  EXPECT_LE(b.tile_count(), 2);
}

TEST(RebalanceOne, PreservesPipelineOrder) {
  const auto net = fig13_net();
  const auto b = rebalance(net, 4, RebalanceAlgorithm::kOne, CostParams{});
  int expected = 0;
  for (const auto& g : b.groups) {
    for (int p : g.procs) {
      EXPECT_EQ(p, expected++);
    }
  }
}

TEST(OptimalPartition, MatchesBruteForceSmallCase) {
  const auto net = fig13_net();
  const std::vector<int> procs = {0, 1, 2, 3, 4};
  const auto parts = optimal_partition(net, procs, 3, CostParams{});
  ASSERT_EQ(parts.size(), 3u);
  // Optimal 3-way split of {1100, 800, 400, 500, 400} ns:
  // {1100} {800,400} {500,400} -> makespan 1200 ns.
  double worst = 0.0;
  for (const auto& g : parts) {
    worst = std::max(worst, group_busy_ns(net, g, CostParams{}));
  }
  EXPECT_NEAR(worst, 1200.0, 1e-6);
}

TEST(OptimalPartition, HandlesMorePartsThanProcs) {
  const auto net = fig13_net();
  const auto parts = optimal_partition(net, {0, 1}, 5, CostParams{});
  EXPECT_EQ(parts.size(), 2u);  // clamped
}

// ---- cross-algorithm properties (parameterised over tile budgets) ----

class RebalanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(RebalanceSweep, AllAlgorithmsProduceValidBindings) {
  const auto net = fig13_net();
  const int tiles = GetParam();
  for (const auto algo : {RebalanceAlgorithm::kOne, RebalanceAlgorithm::kTwo,
                          RebalanceAlgorithm::kOpt}) {
    const auto b = rebalance(net, tiles, algo, CostParams{});
    EXPECT_TRUE(b.validate(net).ok()) << rebalance_name(algo);
    EXPECT_LE(b.tile_count(), tiles) << rebalance_name(algo);
  }
}

TEST_P(RebalanceSweep, MoreTilesNeverHurt) {
  const auto net = fig13_net();
  const int tiles = GetParam();
  for (const auto algo : {RebalanceAlgorithm::kOne, RebalanceAlgorithm::kTwo,
                          RebalanceAlgorithm::kOpt}) {
    const auto fewer = rebalance(net, tiles, algo, CostParams{});
    const auto more = rebalance(net, tiles + 1, algo, CostParams{});
    EXPECT_LE(makespan_ns(net, more), makespan_ns(net, fewer) + 1e-9)
        << rebalance_name(algo) << " at " << tiles;
  }
}

TEST_P(RebalanceSweep, RefinedAlgorithmsDominateGreedy) {
  const auto net = fig13_net();
  const int tiles = GetParam();
  const auto one =
      rebalance(net, tiles, RebalanceAlgorithm::kOne, CostParams{});
  const auto two =
      rebalance(net, tiles, RebalanceAlgorithm::kTwo, CostParams{});
  const auto opt =
      rebalance(net, tiles, RebalanceAlgorithm::kOpt, CostParams{});
  EXPECT_LE(makespan_ns(net, two), makespan_ns(net, one) + 1e-9);
  EXPECT_LE(makespan_ns(net, opt), makespan_ns(net, two) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TileBudgets, RebalanceSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10));

TEST(RebalanceSweepDriver, ProducesOnePointPerBudget) {
  const auto net = fig13_net();
  const auto pts = sweep(net, 6, RebalanceAlgorithm::kTwo, CostParams{});
  ASSERT_EQ(pts.size(), 6u);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].tiles, static_cast<int>(i) + 1);
    EXPECT_GT(pts[i].eval.items_per_sec, 0.0);
    EXPECT_GT(pts[i].eval.avg_utilization, 0.0);
    EXPECT_LE(pts[i].eval.avg_utilization, 1.0 + 1e-9);
  }
  // Throughput is non-decreasing in the tile budget.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].eval.items_per_sec + 1e-6,
              pts[i - 1].eval.items_per_sec);
  }
}

}  // namespace
}  // namespace cgra::mapping

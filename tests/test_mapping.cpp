// Binding validation and pipeline cost-model tests.
#include <gtest/gtest.h>

#include "mapping/binding.hpp"

namespace cgra::mapping {
namespace {

using procnet::Process;
using procnet::ProcessNetwork;

Process make(const std::string& name, std::int64_t runtime, int insts = 10,
             int data3 = 0) {
  Process p;
  p.name = name;
  p.runtime_cycles = runtime;
  p.insts = insts;
  p.data3 = data3;
  return p;
}

ProcessNetwork three_process_net() {
  return ProcessNetwork::pipeline(
      {make("a", 100), make("b", 400), make("c", 100)}, 64);
}

TEST(Binding, ValidateAcceptsCompleteBinding) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0, 1}, 1}, {{2}, 1}};
  EXPECT_TRUE(b.validate(net).ok());
  EXPECT_EQ(b.tile_count(), 2);
}

TEST(Binding, ValidateRejectsUnboundProcess) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0, 1}, 1}};
  EXPECT_FALSE(b.validate(net).ok());
}

TEST(Binding, ValidateRejectsDoubleBinding) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0, 1}, 1}, {{1, 2}, 1}};
  EXPECT_FALSE(b.validate(net).ok());
}

TEST(Binding, ValidateRejectsReplicatingNonReplicable) {
  auto net = three_process_net();
  net.process(1).replicable = false;
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 2}, {{2}, 1}};
  EXPECT_FALSE(b.validate(net).ok());
}

TEST(CostModel, SingleProcessTileHasNoReconfig) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}};
  const auto eval = evaluate(net, b, CostParams{});
  EXPECT_FALSE(eval.needs_reconfig);
  for (const auto& g : eval.groups) {
    EXPECT_DOUBLE_EQ(g.reconfig_ns, 0.0);
  }
  // II bound by the 400-cycle process: 1000 ns.
  EXPECT_DOUBLE_EQ(eval.ii_ns, 1000.0);
  EXPECT_NEAR(eval.items_per_sec, 1e6, 1.0);
}

TEST(CostModel, MultiProcessTilePaysData3Reload) {
  ProcessNetwork net = ProcessNetwork::pipeline(
      {make("a", 100, 10, 6), make("b", 100, 10, 3)}, 8);
  const auto eval = evaluate(net, all_on_one_tile(net), CostParams{});
  EXPECT_TRUE(eval.needs_reconfig);
  // Both pinned (20 insts << 512): reconfig = (6+3) data words.
  EXPECT_NEAR(eval.groups[0].reconfig_ns, 9 * 33.3333, 0.01);
  EXPECT_TRUE(eval.groups[0].all_pinned);
}

TEST(CostModel, UnpinnableInstructionsReloadEachActivation) {
  ProcessNetwork net = ProcessNetwork::pipeline(
      {make("big1", 100, 400), make("big2", 100, 300)}, 8);
  const auto eval = evaluate(net, all_on_one_tile(net), CostParams{});
  // Only one of the two fits the 512-word instruction memory.
  EXPECT_FALSE(eval.groups[0].all_pinned);
  EXPECT_EQ(eval.groups[0].pinned_insts, 400);
  EXPECT_NEAR(eval.groups[0].reconfig_ns, 300 * 50.0, 0.1);
}

TEST(CostModel, ReplicationDividesEffectiveTime) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 4}, {{2}, 1}};
  const auto eval = evaluate(net, b, CostParams{});
  EXPECT_TRUE(eval.needs_relink);
  EXPECT_EQ(eval.tile_count, 6);
  // b's effective time: 400 cycles / 4 = 100 cycles = 250 ns -> II 250.
  EXPECT_DOUBLE_EQ(eval.ii_ns, 250.0);
}

TEST(CostModel, InvocationsPerItemMultiplyWork) {
  Process dct = make("dct", 100);
  dct.invocations_per_item = 4;
  ProcessNetwork net;
  net.add_process(dct);
  Binding b;
  b.groups = {{{0}, 1}};
  const auto eval = evaluate(net, b, CostParams{});
  EXPECT_DOUBLE_EQ(eval.ii_ns, 400 * 2.5);
}

TEST(CostModel, UtilizationBoundsAndPerfectBalance) {
  ProcessNetwork net =
      ProcessNetwork::pipeline({make("a", 100), make("b", 100)}, 8);
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 1}};
  const auto eval = evaluate(net, b, CostParams{});
  EXPECT_NEAR(eval.avg_utilization, 1.0, 1e-9);
}

TEST(CostModel, UtilizationReflectsImbalance) {
  const auto net = three_process_net();  // 100 / 400 / 100
  Binding b;
  b.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}};
  const auto eval = evaluate(net, b, CostParams{});
  // (0.25 + 1.0 + 0.25) / 3
  EXPECT_NEAR(eval.avg_utilization, 0.5, 1e-9);
  EXPECT_GT(eval.avg_utilization, 0.0);
  EXPECT_LE(eval.avg_utilization, 1.0);
}

TEST(CostModel, TimeForItemsScalesLinearly) {
  const auto net = three_process_net();
  const auto eval = evaluate(net, all_on_one_tile(net), CostParams{});
  EXPECT_NEAR(eval.time_for_items(625), 625 * eval.ii_ns, 1e-6);
}

TEST(Binding, DescribeMentionsReplication) {
  const auto net = three_process_net();
  Binding b;
  b.groups = {{{0, 1}, 1}, {{2}, 3}};
  const auto text = b.describe(net);
  EXPECT_NE(text.find("(x3)"), std::string::npos);
  EXPECT_NE(text.find("a"), std::string::npos);
}

}  // namespace
}  // namespace cgra::mapping

// Tests for the Status / Fault reporting types.
#include <gtest/gtest.h>

#include "common/status.hpp"

namespace cgra {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.message(), "ok");
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("something broke");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.message(), "something broke");
}

TEST(Fault, DefaultIsNotAFault) {
  const Fault f;
  EXPECT_FALSE(f.is_fault());
}

TEST(Fault, DescribeNamesEverything) {
  Fault f;
  f.kind = FaultKind::kNoActiveLink;
  f.tile = 3;
  f.pc = 17;
  f.cycle = 420;
  const std::string text = f.describe();
  EXPECT_NE(text.find("no-active-link"), std::string::npos);
  EXPECT_NE(text.find("tile 3"), std::string::npos);
  EXPECT_NE(text.find("pc 17"), std::string::npos);
  EXPECT_NE(text.find("cycle 420"), std::string::npos);
}

TEST(Fault, AllKindsHaveNames) {
  for (const auto kind :
       {FaultKind::kNone, FaultKind::kIllegalOpcode, FaultKind::kPcOutOfRange,
        FaultKind::kAddressOutOfRange, FaultKind::kNoActiveLink,
        FaultKind::kDivideByZero}) {
    EXPECT_STRNE(fault_kind_name(kind), "unknown");
  }
}

}  // namespace
}  // namespace cgra

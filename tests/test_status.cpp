// Tests for the Status / Fault reporting types.
#include <gtest/gtest.h>

#include "common/status.hpp"

namespace cgra {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.message(), "ok");
}

TEST(Status, ErrorCarriesMessage) {
  const Status s = Status::error("something broke");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.message(), "something broke");
}

TEST(Status, ErrorfFormats) {
  const Status s = Status::errorf("tile %d needs %d words, has %d", 7, 640, 512);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "tile 7 needs 640 words, has 512");
}

TEST(Status, ErrorfHandlesLongMessages) {
  std::string long_name(500, 'x');
  const Status s = Status::errorf("process '%s' unmapped", long_name.c_str());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find(long_name), std::string::npos);
}

TEST(Fault, DefaultIsNotAFault) {
  const Fault f;
  EXPECT_FALSE(f.is_fault());
}

TEST(Fault, DescribeNamesEverything) {
  Fault f;
  f.kind = FaultKind::kNoActiveLink;
  f.tile = 3;
  f.pc = 17;
  f.cycle = 420;
  const std::string text = f.describe();
  EXPECT_NE(text.find("no-active-link"), std::string::npos);
  EXPECT_NE(text.find("tile 3"), std::string::npos);
  EXPECT_NE(text.find("pc 17"), std::string::npos);
  EXPECT_NE(text.find("cycle 420"), std::string::npos);
}

TEST(Fault, AllKindsHaveNames) {
  for (const auto kind :
       {FaultKind::kNone, FaultKind::kIllegalOpcode, FaultKind::kPcOutOfRange,
        FaultKind::kAddressOutOfRange, FaultKind::kNoActiveLink,
        FaultKind::kIcapCorruption, FaultKind::kWatchdogTimeout,
        FaultKind::kLinkDown, FaultKind::kTileDead}) {
    EXPECT_STRNE(fault_kind_name(kind), "unknown");
  }
}

TEST(Fault, TransientAndPermanentNeverOverlap) {
  // The recovery manager dispatches on this classification: transient
  // faults get scrub-and-retry, permanent ones get evacuation.  A kind
  // that is both would be dispatched twice.
  for (const auto kind :
       {FaultKind::kNone, FaultKind::kIllegalOpcode, FaultKind::kPcOutOfRange,
        FaultKind::kAddressOutOfRange, FaultKind::kNoActiveLink,
        FaultKind::kIcapCorruption, FaultKind::kWatchdogTimeout,
        FaultKind::kLinkDown, FaultKind::kTileDead}) {
    EXPECT_FALSE(fault_is_transient(kind) && fault_is_permanent(kind))
        << fault_kind_name(kind);
  }
  // kNoActiveLink is a program bug (store to a link that was never
  // configured), not a hardware fault: neither scrubbing nor evacuation
  // can fix the program, so it is neither transient nor permanent.
  EXPECT_FALSE(fault_is_transient(FaultKind::kNoActiveLink));
  EXPECT_FALSE(fault_is_permanent(FaultKind::kNoActiveLink));
  EXPECT_FALSE(fault_is_transient(FaultKind::kNone));
  EXPECT_FALSE(fault_is_permanent(FaultKind::kNone));
}

TEST(Fault, HardwareFaultsArePermanent) {
  EXPECT_TRUE(fault_is_permanent(FaultKind::kTileDead));
  EXPECT_TRUE(fault_is_permanent(FaultKind::kLinkDown));
  EXPECT_TRUE(fault_is_transient(FaultKind::kIcapCorruption));
  EXPECT_TRUE(fault_is_transient(FaultKind::kWatchdogTimeout));
}

}  // namespace
}  // namespace cgra

// Unit tests for the 48-bit word type.
#include <gtest/gtest.h>

#include "common/word.hpp"

namespace cgra {
namespace {

TEST(Word, TruncateMasksTo48Bits) {
  EXPECT_EQ(truncate_word(0xFFFF'FFFF'FFFF'FFFFull), kWordMask);
  EXPECT_EQ(truncate_word(0), 0u);
  EXPECT_EQ(truncate_word(std::uint64_t{1} << 48), 0u);
  EXPECT_EQ(truncate_word((std::uint64_t{1} << 48) | 5u), 5u);
}

TEST(Word, SignedRoundTripPositive) {
  for (std::int64_t v : {0LL, 1LL, 42LL, (1LL << 46), (1LL << 47) - 1}) {
    EXPECT_EQ(to_signed(from_signed(v)), v) << v;
  }
}

TEST(Word, SignedRoundTripNegative) {
  for (std::int64_t v : {-1LL, -42LL, -(1LL << 46), -(1LL << 47)}) {
    EXPECT_EQ(to_signed(from_signed(v)), v) << v;
  }
}

TEST(Word, SignedWrapsAtBoundary) {
  // 2^47 wraps to -2^47.
  EXPECT_EQ(to_signed(from_signed(1LL << 47)), -(1LL << 47));
}

TEST(Word, AddWraps) {
  EXPECT_EQ(word_add(kWordMask, 1), 0u);
  EXPECT_EQ(to_signed(word_add(from_signed(-5), from_signed(3))), -2);
}

TEST(Word, SubWraps) {
  EXPECT_EQ(to_signed(word_sub(from_signed(3), from_signed(5))), -2);
  EXPECT_EQ(word_sub(0, 1), kWordMask);
}

TEST(Word, MulSigned) {
  EXPECT_EQ(to_signed(word_mul(from_signed(-3), from_signed(7))), -21);
  EXPECT_EQ(to_signed(word_mul(from_signed(1 << 20), from_signed(1 << 20))),
            1LL << 40);
}

TEST(Word, HexRendering) {
  EXPECT_EQ(word_to_hex(0), "0x000000000000");
  EXPECT_EQ(word_to_hex(kWordMask), "0xffffffffffff");
  EXPECT_EQ(word_to_hex(0xABCDEF), "0x000000abcdef");
}

// Property sweep: signed round-trip across a pseudo-random sample.
class WordRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WordRoundTrip, RoundTrips) {
  const std::int64_t v = GetParam();
  EXPECT_EQ(to_signed(from_signed(v)), v);
}

INSTANTIATE_TEST_SUITE_P(
    Sample, WordRoundTrip,
    ::testing::Values(0, 1, -1, 1000, -1000, 123456789, -123456789,
                      (1LL << 47) - 1, -(1LL << 47), 0x7FFF'FFFF'FFFF >> 3));

}  // namespace
}  // namespace cgra

// Fabric JPEG kernel tests: bit-exact agreement with the host reference.
#include <gtest/gtest.h>

#include "apps/fft/programs.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "common/prng.hpp"
#include "fabric/fabric.hpp"

namespace cgra::jpeg {
namespace {

IntBlock random_pixels(std::uint64_t seed) {
  SplitMix64 rng(seed);
  IntBlock b{};
  for (auto& v : b) v = static_cast<int>(rng.next_below(256));
  return b;
}

/// Load a kernel, preset X, run, return the tile.
fabric::Fabric run_kernel(const std::string& src, const IntBlock& x,
                          const std::vector<isa::DataPatch>& extra = {}) {
  fabric::Fabric fab(1, 1);
  auto& tile = fab.tile(0);
  EXPECT_TRUE(tile.load_program(fft::must_assemble(src)));
  const JpegLayout lay;
  for (int i = 0; i < 64; ++i) {
    tile.set_dmem(lay.x + i, from_signed(x[static_cast<std::size_t>(i)]));
  }
  EXPECT_TRUE(tile.patch_data(extra));
  tile.restart();
  const auto run = fab.run(10'000'000);
  EXPECT_TRUE(run.ok());
  return fab;
}

IntBlock read_block(const fabric::Fabric& fab, int base) {
  IntBlock out{};
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(to_signed(fab.tile(0).dmem(base + i)));
  }
  return out;
}

TEST(JpegFabric, ShiftKernelMatchesReference) {
  const JpegLayout lay;
  const auto px = random_pixels(1);
  const auto fab = run_kernel(shift_source(lay), px);
  EXPECT_EQ(read_block(fab, lay.x), level_shift(px));
}

TEST(JpegFabric, DctKernelMatchesFixedReference) {
  const JpegLayout lay;
  const auto shifted = level_shift(random_pixels(2));
  std::vector<isa::DataPatch> basis;
  for (int i = 0; i < 64; ++i) {
    basis.push_back({lay.c + i,
                     from_signed(dct_basis_q12()[static_cast<std::size_t>(i)])});
  }
  const auto fab = run_kernel(dct_source(lay), shifted, basis);
  EXPECT_EQ(read_block(fab, lay.x), fdct_fixed(shifted));
}

TEST(JpegFabric, QuantizeKernelMatchesReference) {
  const JpegLayout lay;
  const auto coeffs = fdct_fixed(level_shift(random_pixels(3)));
  const auto quant = scaled_quant(50);
  std::vector<isa::DataPatch> recips;
  for (int i = 0; i < 64; ++i) {
    recips.push_back({lay.r + i,
                      from_signed(quant_reciprocal(quant[static_cast<std::size_t>(i)]))});
  }
  const auto fab = run_kernel(quantize_source(lay), coeffs, recips);
  EXPECT_EQ(read_block(fab, lay.x), quantize(coeffs, quant));
}

TEST(JpegFabric, ZigzagKernelMatchesReference) {
  const JpegLayout lay;
  IntBlock b{};
  for (int i = 0; i < 64; ++i) b[static_cast<std::size_t>(i)] = i * 7 - 100;
  const auto fab = run_kernel(zigzag_source(lay), b);
  EXPECT_EQ(read_block(fab, lay.t), zigzag_scan(b));
}

TEST(JpegFabric, ZigzagFootprintIs65Words) {
  // Table 3 lists the zigzag process at 65 instruction words; the
  // straight-line gather hits that exactly.
  const JpegLayout lay;
  EXPECT_EQ(fft::must_assemble(zigzag_source(lay)).inst_words(), 65);
}

TEST(JpegFabric, KernelCyclesAreMeasurable) {
  const auto cycles = measure_jpeg_kernels();
  EXPECT_GT(cycles.shift, 0);
  EXPECT_GT(cycles.dct, 0);
  EXPECT_GT(cycles.quantize, 0);
  EXPECT_EQ(cycles.zigzag, 65);
  // DCT dominates, as in the paper (Table 3's 133k cycles vs ~1k others).
  EXPECT_GT(cycles.dct, 10 * cycles.quantize);
  EXPECT_GT(cycles.dct, 10 * cycles.shift);
}

class FabricBlockPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricBlockPipeline, MatchesHostStagesBitExactly) {
  const auto raw = random_pixels(GetParam());
  const auto quant = scaled_quant(50);
  const auto result = encode_block_on_fabric(raw, quant);
  ASSERT_TRUE(result.ok()) << result.faults.size() << " faults";
  EXPECT_EQ(result.zigzagged, encode_block_stages(raw, quant));
  EXPECT_GT(result.total_cycles, 0);
  EXPECT_GT(result.reconfig_ns, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricBlockPipeline,
                         ::testing::Values(10u, 20u, 30u, 40u));

// ---- Huffman entropy coding on the fabric ----

namespace {

/// Host golden model: the exact bit string (MSB first, pre-stuffing) of one
/// block, using the same tables as the fabric program.
std::vector<std::uint8_t> host_entropy_bits(const IntBlock& zz, int prev_dc) {
  const HuffEncoder dc = build_encoder(dc_luminance_spec());
  const HuffEncoder ac = build_encoder(ac_luminance_spec());
  std::vector<std::uint8_t> bits;
  auto put = [&](std::uint32_t value, int n) {
    for (int b = n - 1; b >= 0; --b) {
      bits.push_back(static_cast<std::uint8_t>((value >> b) & 1));
    }
  };
  auto put_amp = [&](int v, int cat) {
    if (cat == 0) return;
    const std::uint32_t amp =
        v >= 0 ? static_cast<std::uint32_t>(v)
               : static_cast<std::uint32_t>(v + (1 << cat) - 1);
    put(amp, cat);
  };
  const int diff = zz[0] - prev_dc;
  const int dc_cat = bit_category(diff);
  put(dc.code[static_cast<std::size_t>(dc_cat)],
      dc.length[static_cast<std::size_t>(dc_cat)]);
  put_amp(diff, dc_cat);
  int run = 0;
  for (std::size_t i = 1; i < 64; ++i) {
    const int v = zz[i];
    if (v == 0) {
      ++run;
      continue;
    }
    while (run >= 16) {
      put(ac.code[0xF0], ac.length[0xF0]);
      run -= 16;
    }
    const int cat = bit_category(v);
    const auto sym = static_cast<std::size_t>((run << 4) | cat);
    put(ac.code[sym], ac.length[sym]);
    put_amp(v, cat);
    run = 0;
  }
  if (run > 0) put(ac.code[0x00], ac.length[0x00]);
  return bits;
}

}  // namespace

TEST(HmanFabric, ProgramFitsTheTile) {
  const HmanLayout lay;
  const auto prog = fft::must_assemble(hman_source(lay));
  EXPECT_LE(prog.inst_words(), kInstMemWords);
}

TEST(HmanFabric, DcOnlyBlock) {
  IntBlock zz{};
  zz[0] = 10;
  const auto result = encode_entropy_on_fabric(zz, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.bits, host_entropy_bits(zz, 0));
}

TEST(HmanFabric, NegativeDcDelta) {
  IntBlock zz{};
  zz[0] = -37;
  const auto result = encode_entropy_on_fabric(zz, 12);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.bits, host_entropy_bits(zz, 12));
}

TEST(HmanFabric, ZrlRunsOfZeros) {
  IntBlock zz{};
  zz[0] = 5;
  zz[40] = -3;  // 39 leading zeros -> two ZRLs + run 7
  const auto result = encode_entropy_on_fabric(zz, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.bits, host_entropy_bits(zz, 0));
}

TEST(HmanFabric, DenseBlockNoEob) {
  IntBlock zz{};
  for (int i = 0; i < 64; ++i) {
    zz[static_cast<std::size_t>(i)] = (i % 2 == 0) ? i - 32 : 33 - i;
  }
  // Last coefficient nonzero: no EOB emitted.
  const auto result = encode_entropy_on_fabric(zz, -4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.bits, host_entropy_bits(zz, -4));
}

class HmanFabricFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HmanFabricFuzz, MatchesHostOnRealBlocks) {
  // Full realism: the zigzag blocks of real quantised DCTs.
  SplitMix64 rng(GetParam());
  const auto quant = scaled_quant(50);
  int prev_dc = 0;
  for (int round = 0; round < 6; ++round) {
    IntBlock raw{};
    for (auto& px : raw) px = static_cast<int>(rng.next_below(256));
    const IntBlock zz = encode_block_stages(raw, quant);
    const auto result = encode_entropy_on_fabric(zz, prev_dc);
    ASSERT_TRUE(result.ok()) << round;
    EXPECT_EQ(result.bits, host_entropy_bits(zz, prev_dc)) << round;
    EXPECT_GT(result.cycles, 0);
    prev_dc = zz[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HmanFabricFuzz,
                         ::testing::Values(0xAAu, 0xBBu, 0xCCu));

TEST(HmanFabric, CyclesInTable3Ballpark) {
  // The paper's hman1..hman5 sum to ~20k cycles per block; our single-tile
  // table-driven version must land within an order of magnitude.
  SplitMix64 rng(0xEE);
  IntBlock raw{};
  for (auto& px : raw) px = static_cast<int>(rng.next_below(256));
  const IntBlock zz = encode_block_stages(raw, scaled_quant(50));
  const auto result = encode_entropy_on_fabric(zz, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.cycles, 200);
  EXPECT_LT(result.cycles, 60000);
}

TEST(JpegFabric, PipelineWorksAtHighQuality) {
  const auto raw = random_pixels(99);
  const auto quant = scaled_quant(90);
  const auto result = encode_block_on_fabric(raw, quant);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.zigzagged, encode_block_stages(raw, quant));
}

}  // namespace
}  // namespace cgra::jpeg

// Regenerates Figures 13 and 14: the paper's worked rebalancing example.
//
// Figure 13 walks reBalanceOne from one to five tiles over a synthetic
// five-process pipeline (3200 ns total; the heaviest split first);
// Figure 14 then shows reBalanceTwo and reBalanceOPT redistributing the
// set around the heaviest tile, cutting the makespan from 1400 ns to
// 1200 ns and below.  We reconstruct the process runtimes from the
// figure's annotations and print each step's allocation.
#include <cstdio>

#include "common/table.hpp"
#include "mapping/rebalance.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

namespace {

cgra::procnet::ProcessNetwork fig13_network() {
  using cgra::procnet::Process;
  // Runtimes reconstructed from Figure 13's step annotations (in ns at
  // 2.5 ns per cycle): p1 1100, p2 800, p3 500, p4 900, p5 900 — one tile
  // holds all five at 4200 ns and the splits produce the figure's
  // 1100/800/1400/900 pattern.
  std::vector<Process> procs;
  const struct {
    const char* name;
    int ns;
  } spec[5] = {{"p1", 1100}, {"p2", 800}, {"p3", 500}, {"p4", 900},
               {"p5", 900}};
  for (const auto& s : spec) {
    Process p;
    p.name = s.name;
    p.runtime_cycles = s.ns * 2 / 5;  // ns -> cycles at 2.5 ns
    p.insts = 20;
    procs.push_back(p);
  }
  return cgra::procnet::ProcessNetwork::pipeline(std::move(procs), 16);
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;
  using mapping::RebalanceAlgorithm;

  const auto net = fig13_network();
  const CostParams params{};

  obs::BenchReport report("fig13_14_rebalance_example");
  std::printf("Figure 13 — reBalanceOne, one tile at a time\n\n");
  for (int tiles = 1; tiles <= 5; ++tiles) {
    const auto b = mapping::rebalance(net, tiles, RebalanceAlgorithm::kOne,
                                      params);
    const auto eval = mapping::evaluate(net, b, params);
    std::printf("  %d tile(s): %-55s makespan %.0f ns\n", tiles,
                b.describe(net).c_str(), eval.ii_ns);
    report.add("rebalance_one_makespan", eval.ii_ns, "ns",
               {{"tiles", std::to_string(tiles)}});
  }

  std::printf(
      "\nFigure 14 — refining the allocation around the heaviest tile\n"
      "(at 4 tiles, where the greedy split leaves an imbalance)\n\n");
  TextTable table({"algorithm", "binding", "makespan(ns)"});
  for (const auto algo : {RebalanceAlgorithm::kOne, RebalanceAlgorithm::kTwo,
                          RebalanceAlgorithm::kOpt}) {
    const auto b = mapping::rebalance(net, 4, algo, params);
    const auto eval = mapping::evaluate(net, b, params);
    table.add_row({mapping::rebalance_name(algo), b.describe(net),
                   TextTable::num(eval.ii_ns, 0)});
    report.add("makespan_4tiles", eval.ii_ns, "ns",
               {{"algorithm", mapping::rebalance_name(algo)}});
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("fig14", table);
  if (!report.write()) return 1;
  std::printf(
      "Paper: reBalanceOne leaves 1400 ns; redistributing the surrounding\n"
      "set (reBalanceTwo) reaches 1200 ns and reBalanceOPT the set optimum.\n"
      "The refined algorithms must dominate the greedy one (asserted as a\n"
      "property by the test suite).\n");
  return 0;
}

// Regenerates Table 2: optimised copy processes.
//
// Retargeting a vcp's source/destination variables naively reloads them
// through the ICAP (33.33 ns per word); the optimisation updates them with
// the tile's own ALU instructions (2.5 ns each).  The paper reports the per
// column-count costs for the 1024-point FFT; we reproduce the rule
// (reg_cp * rows words per retarget, retarget count falling with columns)
// and additionally *execute* both variants on the simulator.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/fft/partition.hpp"
#include "apps/fft/programs.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "fabric/fabric.hpp"
#include "interconnect/link.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

namespace {

/// Executed cost of updating the two copy variables in place: a 6-
/// instruction epilogue (2 adds per variable + counter reset + jump).
double executed_inplace_update_ns() {
  using namespace cgra;
  // add ps, ps, #k ; add pb, pb, #k ; movi cnt, #n ; (x2 vars) -> 6 instrs.
  return cycles_to_ns(6);
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto g = fft::make_geometry(1024);
  const IcapModel icap;
  const int reg_cp = 2;  // source + destination variable per vcp
  obs::BenchReport report("table2_copy_opt");

  std::printf("Table 2 — optimised copy processes (N=%d, M=%d, rows=%d)\n\n",
              g.n, g.m, g.rows);

  TextTable table({"cols", "retargets", "prev. cost(ns) [ICAP reload]",
                   "new cost(ns) [in-place]", "improvement(ns)"});
  const double paper_prev[4] = {1066.6, 1066.6, 533.3, 0.0};
  const double paper_new[4] = {15.0, 15.0, 10.0, 0.0};
  int idx = 0;
  for (const int cols : {1, 2, 5, 10}) {
    // Retargets per transform: one fewer than the vertical copy executions
    // that remain visible (see dse::evaluate_fft_design).
    const int cross = g.cross_stages();
    const double frac = 1.0 - static_cast<double>(cols - 1) / g.stages;
    const int execs =
        std::max(cols >= g.stages ? 1 : 0,
                 static_cast<int>(std::ceil(cross * frac)));
    const int retargets = std::max(0, execs - 1);

    const double prev_ns =
        icap.data_reload_ns(static_cast<long long>(reg_cp) * g.rows) *
        retargets;
    const double new_ns = executed_inplace_update_ns() * retargets;
    table.add_row({TextTable::integer(cols), TextTable::integer(retargets),
                   TextTable::num(prev_ns, 1), TextTable::num(new_ns, 1),
                   TextTable::num(prev_ns - new_ns, 1)});
    report.add("retarget_saving", prev_ns - new_ns, "ns",
               {{"cols", std::to_string(cols)}});
    std::printf("  paper row (cols=%d): prev %.1f ns, new %.1f ns\n", cols,
                paper_prev[idx], paper_new[idx]);
    ++idx;
  }
  std::printf("\n%s\n", table.render().c_str());
  report.add_table("table2", table);

  // Demonstrate the optimisation on the live fabric: a resident copy loop
  // retargeted by two data patches (no instruction reload).
  {
    const auto lay = fft::make_layout(g.m);
    fabric::Fabric fab(2, 1);
    fab.links().set_output(0, interconnect::Direction::kSouth);
    auto& src = fab.tile(0);
    src.load_program(fft::must_assemble(
        fft::copy_loop_source(lay, g.m / 2, lay.x, lay.p, true)));
    src.restart();
    const auto first = fab.run(1'000'000);
    const std::vector<isa::DataPatch> retarget = {
        {lay.ps, static_cast<Word>(lay.x)},
        {lay.pb, static_cast<Word>(lay.p)},
        {lay.cnt_j, static_cast<Word>(g.m / 2)}};
    src.patch_data(retarget);
    src.restart(3);
    const auto second = fab.run(1'000'000);
    std::printf(
        "Executed check: vcp run %lld cycles; retargeted rerun %lld cycles\n"
        "(retarget payload: 3 data words = %.1f ns through the ICAP versus\n"
        " a %d-word program reload = %.1f ns).\n",
        static_cast<long long>(first.cycles),
        static_cast<long long>(second.cycles), icap.data_reload_ns(3),
        9, icap.inst_reload_ns(9));
    report.add("vcp_run", static_cast<double>(first.cycles), "cycles");
    report.add("vcp_retargeted_rerun", static_cast<double>(second.cycles),
               "cycles");
    report.add("retarget_payload", icap.data_reload_ns(3), "ns");
  }
  if (!report.write()) return 1;
  return 0;
}

// Ablation: partial versus full (single-context) reconfiguration.
//
// The paper's core premise: "because the architecture is partially
// reconfigured, the reconfiguration in some tiles can be completely
// overlapped with computation in other tiles."  This bench runs the same
// cycle-accurate FFT twice — once with the partial-reconfiguration
// controller and once with a controller that stalls the whole array during
// every transition — and reports the executed wall-clock difference.
#include <cstdio>

#include "apps/fft/fabric_fft.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

namespace {

/// run_fabric_fft always uses the partial controller; for the full-stall
/// variant we re-run the returned schedule conservatively: every ns of
/// reconfiguration is serialised with compute instead of overlapping.
double full_stall_estimate_ns(const cgra::config::Timeline& t) {
  double compute_only = t.epoch_compute_ns;
  // Remove the exposed stall already inside epoch_compute_ns: the executed
  // time of each epoch includes max(stall, 0) for stalled tiles.  An upper
  // bound of the pure compute is epoch time minus nothing (we keep it),
  // so the full-stall estimate is compute + ALL reconfiguration serial.
  return compute_only + t.reconfig_ns;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  std::printf("Ablation — partial vs full reconfiguration\n\n");

  obs::BenchReport report("ablation_overlap");
  TextTable table({"workload", "partial (executed ns)",
                   "full-stall (ns)", "hidden by overlap"});

  for (const int n : {32, 64, 128}) {
    const auto g = fft::make_geometry(n, n <= 64 ? 8 : 16);
    SplitMix64 rng(42);
    std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};

    const auto result = fft::run_fabric_fft(g, x);
    if (!result.ok()) {
      std::printf("fabric FFT failed for N=%d\n", n);
      return 1;
    }
    const double partial_ns = result.timeline.epoch_compute_ns;
    const double full_ns = full_stall_estimate_ns(result.timeline);
    table.add_row({"FFT N=" + std::to_string(n),
                   TextTable::num(partial_ns, 0), TextTable::num(full_ns, 0),
                   TextTable::num(100.0 * (full_ns - partial_ns) / full_ns,
                                  1) +
                       "%"});
    report.add("overlap_hidden_pct",
               100.0 * (full_ns - partial_ns) / full_ns, "%",
               {{"fft_n", std::to_string(n)}});
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("overlap", table);
  if (!report.write()) return 1;

  std::printf(
      "The executed (partial) time already contains whatever stall could\n"
      "not hide behind other tiles' compute; the full-stall column adds the\n"
      "entire ICAP traffic serially, which is what a single-context fabric\n"
      "would pay.  The gap is the paper's overlap benefit.\n");
  return 0;
}

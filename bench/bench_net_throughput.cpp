// Network serving throughput (the PR acceptance bench): N client
// threads hammer one cgra::net::Server over loopback TCP with a fixed
// JPEG-block / FFT request mix and every reply is checked bit-identical
// to the same job executed in-process on the same service.  Runs the
// rig TWICE — tracing off, then tracing on (shared server/service
// tracer plus a per-client tracer, protocol v3 trace contexts on every
// request) — and reports both sustained req/s figures and the tracing
// overhead between them.  The overhead target is 3%; the run only hard-
// fails beyond 10% (loopback throughput on shared CI is too noisy for
// the target itself to gate).  Written to BENCH_net_throughput.json for
// the CI perf artifact.  Fails (exit 1) below the 1000 req/s acceptance
// bar or on any reply mismatch in either phase.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "cgra/net.hpp"
#include "engine/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Fixed mix: 7 JPEG blocks per FFT — blocks are the high-volume
/// request type, the FFTs keep reconfiguration epochs in the path.
constexpr int kClients = 4;
constexpr int kRequestsPerClient = 256;
constexpr int kFftEvery = 8;
constexpr double kMinReqPerSec = 1000.0;
constexpr double kOverheadTargetPct = 3.0;
constexpr double kOverheadHardFailPct = 10.0;

cgra::jpeg::IntBlock block_for(int seed) {
  cgra::jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 5) * 31 + i * 11) % 256;
  }
  return raw;
}

cgra::service::JobRequest request_for(int index) {
  using namespace cgra;
  if (index % kFftEvery == kFftEvery - 1) {
    service::FftRequest req;
    req.n = 64;
    req.m = 8;
    req.input.resize(64);
    SplitMix64 rng(static_cast<std::uint64_t>(index) + 1);
    for (auto& v : req.input) {
      v = {rng.next_double(-1, 1) / req.n, rng.next_double(-1, 1) / req.n};
    }
    return service::JobRequest{req};
  }
  service::JpegBlockRequest req;
  req.raw = block_for(index);
  req.quant = jpeg::scaled_quant(75);
  return service::JobRequest{req};
}

bool payload_equal(const cgra::service::JobResult& a,
                   const cgra::service::JobResult& b) {
  using namespace cgra::service;
  if (!a.ok() || !b.ok() || a.payload.index() != b.payload.index()) {
    return false;
  }
  if (const auto* blk = std::get_if<JpegBlockJobResult>(&a.payload)) {
    return blk->zigzagged == std::get<JpegBlockJobResult>(b.payload).zigzagged;
  }
  if (const auto* fft = std::get_if<FftJobResult>(&a.payload)) {
    // Exact ==: the wire carries the bit patterns, not approximations.
    return fft->output == std::get<FftJobResult>(b.payload).output;
  }
  return false;
}

double percentile(std::vector<double>* sorted, double p) {
  std::sort(sorted->begin(), sorted->end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

struct PhaseStats {
  double wall_ms = 0.0;
  double req_per_sec = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  int failed = 0;
  int mismatched = 0;
};

/// One full rig: fresh service + server (+ tracer when `traced`), an
/// in-process oracle/warm-up pass, then kClients threads of checked
/// round-trips.  Returns false on a setup failure.
bool run_phase(bool traced, PhaseStats* out) {
  using namespace cgra;
  obs::Tracer tracer;

  service::ServiceOptions sopt;
  sopt.workers = 1;  // single-core host: batching does the heavy lifting
  sopt.queue_capacity = 512;
  sopt.batch_limit = 16;
  if (traced) sopt.tracer = &tracer;
  service::Service svc(sopt);
  net::ServerOptions nopt;
  if (traced) nopt.tracer = &tracer;
  net::Server server(&svc, nopt);
  if (const auto s = server.start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.message().c_str());
    return false;
  }

  // Expected results computed in-process first — this is the oracle the
  // wire replies must match bit for bit, and it doubles as the warm-up
  // that fills the artifact cache and fabric pool.
  const int total = kClients * kRequestsPerClient;
  std::vector<service::JobResult> expected;
  expected.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    expected.push_back(svc.wait(svc.submit(request_for(i)).handle));
    if (!expected.back().ok()) {
      std::printf("in-process job %d failed: %s\n", i,
                  expected.back().status.message().c_str());
      return false;
    }
  }

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c, traced] {
      obs::Tracer client_tracer;
      net::ClientOptions copt;
      copt.port = server.port();
      if (traced) copt.tracer = &client_tracer;
      net::Client client(copt);
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int index = c * kRequestsPerClient + r;
        net::Response resp;
        const auto rt0 = Clock::now();
        const Status s = client.call(request_for(index), &resp);
        lat.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - rt0)
                .count());
        if (!s.ok() || !resp.result.ok()) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        if (!payload_equal(resp.result,
                           expected[static_cast<std::size_t>(index)])) {
          ++mismatches[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out->wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  server.stop();

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (int c = 0; c < kClients; ++c) {
    out->failed += failures[static_cast<std::size_t>(c)];
    out->mismatched += mismatches[static_cast<std::size_t>(c)];
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  out->req_per_sec = 1000.0 * total / out->wall_ms;
  out->p50 = percentile(&all, 0.50);
  out->p90 = percentile(&all, 0.90);
  out->p99 = percentile(&all, 0.99);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const int total = kClients * kRequestsPerClient;
  std::printf("Network serving throughput — %d clients x %d requests\n\n",
              kClients, kRequestsPerClient);

  PhaseStats off;
  if (!run_phase(/*traced=*/false, &off)) return 1;
  PhaseStats on;
  if (!run_phase(/*traced=*/true, &on)) return 1;

  const double overhead_pct =
      off.req_per_sec > 0.0
          ? 100.0 * (off.req_per_sec - on.req_per_sec) / off.req_per_sec
          : 0.0;

  TextTable table({"metric", "tracing off", "tracing on"});
  table.add_row({"clients", TextTable::integer(kClients),
                 TextTable::integer(kClients)});
  table.add_row({"requests", TextTable::integer(total),
                 TextTable::integer(total)});
  table.add_row({"wall ms", TextTable::num(off.wall_ms, 1),
                 TextTable::num(on.wall_ms, 1)});
  table.add_row({"req/s", TextTable::num(off.req_per_sec, 0),
                 TextTable::num(on.req_per_sec, 0)});
  table.add_row({"p50 ms", TextTable::num(off.p50, 2),
                 TextTable::num(on.p50, 2)});
  table.add_row({"p90 ms", TextTable::num(off.p90, 2),
                 TextTable::num(on.p90, 2)});
  table.add_row({"p99 ms", TextTable::num(off.p99, 2),
                 TextTable::num(on.p99, 2)});
  std::printf("%s\n", table.render().c_str());
  const int bad = off.failed + off.mismatched + on.failed + on.mismatched;
  std::printf("replies verified bit-identical to in-process: %d/%d\n",
              2 * total - bad, 2 * total);
  std::printf("tracing overhead: %.1f%% (target <= %.0f%%, hard fail > "
              "%.0f%%)\n",
              overhead_pct, kOverheadTargetPct, kOverheadHardFailPct);

  obs::BenchReport report("net_throughput");
  report.add("req_per_sec", off.req_per_sec, "req/s");
  report.add("wall_ms", off.wall_ms, "ms");
  report.add("latency_p50_ms", off.p50, "ms");
  report.add("latency_p90_ms", off.p90, "ms");
  report.add("latency_p99_ms", off.p99, "ms");
  report.add("req_per_sec_traced", on.req_per_sec, "req/s");
  report.add("latency_p99_traced_ms", on.p99, "ms");
  report.add("tracing_overhead_pct", overhead_pct, "%");
  report.add("clients", kClients, "count");
  report.add("requests", total, "count");
  report.add_table("net_throughput", table);
  if (!report.write()) return 1;

  if (bad > 0) {
    std::printf("FAIL: %d transport failures / payload mismatches\n", bad);
    return 1;
  }
  if (off.req_per_sec < kMinReqPerSec || on.req_per_sec < kMinReqPerSec) {
    std::printf("FAIL: below the %.0f req/s acceptance bar\n", kMinReqPerSec);
    return 1;
  }
  if (overhead_pct > kOverheadHardFailPct) {
    std::printf("FAIL: tracing overhead %.1f%% beyond the %.0f%% hard bar\n",
                overhead_pct, kOverheadHardFailPct);
    return 1;
  }
  return 0;
}

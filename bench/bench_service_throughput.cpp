// Warm service vs per-request construction (the tentpole acceptance
// bench): the same repeated mixed workload — JPEG blocks, JPEG images,
// FFTs — executed two ways and timed on the host clock:
//
//   cold  — every request constructs its own fabric, re-assembles every
//           kernel, re-derives twiddles/quant tables (the library entry
//           points exactly as a one-shot caller uses them);
//   warm  — one cgra::service::Service with pooled reset-and-reuse
//           fabrics, the content-addressed artifact cache and
//           epoch-schedule batching.
//
// Each arm runs kReps times and the best wall time counts — the
// standard way to shed scheduler noise on a shared single-core host.
// Every warm result is checked bit-identical to its cold counterpart
// before any time is reported; the run fails loudly otherwise.  The
// speedup must be >= 2x — CI treats a regression below that as failure
// (exit code 1).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cgra/service.hpp"
#include "engine/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

cgra::jpeg::IntBlock block_for(int seed) {
  cgra::jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 3) * 29 + i * 17) % 256;
  }
  return raw;
}

std::vector<cgra::fft::Cplx> signal_for(int n, int seed) {
  std::vector<cgra::fft::Cplx> x(static_cast<std::size_t>(n));
  cgra::SplitMix64 rng(static_cast<std::uint64_t>(seed) + 1);
  for (auto& v : x) {
    v = {rng.next_double(-1, 1) / n, rng.next_double(-1, 1) / n};
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  std::printf("Service throughput — warm pool+cache vs per-request\n\n");

  // The repeated mixed workload: what a runtime management system sees
  // when clients stream requests at it.  Block encodes dominate (the
  // high-volume request type); FFTs and whole images keep the mix
  // heterogeneous.  Per-category warm gains are uneven — blocks ~3x
  // (cached artifacts + batch-amortised setup), FFTs ~1.7x (their
  // reconfiguration epochs are still simulated per job) — so the
  // aggregate bar is carried by the cache/pool/batching combination.
  constexpr int kReps = 3;
  constexpr int kRounds = 16;
  constexpr int kBlocksPerRound = 24;
  constexpr int kFftsPerRound = 2;
  constexpr int kImagesPerRound = 1;
  const auto quant = jpeg::scaled_quant(75);
  const auto g = fft::make_geometry(64, 8);
  const auto image = jpeg::synthetic_image(16, 16, 9);

  // --- cold arm: library entry points, per-request construction ---
  std::vector<jpeg::IntBlock> cold_blocks;
  std::vector<std::vector<fft::Cplx>> cold_ffts;
  std::vector<std::vector<std::uint8_t>> cold_images;
  const auto run_cold = [&]() -> double {
    cold_blocks.clear();
    cold_ffts.clear();
    cold_images.clear();
    const auto t0 = Clock::now();
    for (int r = 0; r < kRounds; ++r) {
      for (int b = 0; b < kBlocksPerRound; ++b) {
        const auto res = jpeg::encode_block_on_fabric(
            block_for(r * kBlocksPerRound + b), quant);
        if (!res.ok()) {
          std::printf("cold block failed: %s\n",
                      res.status.message().c_str());
          std::exit(1);
        }
        cold_blocks.push_back(res.zigzagged);
      }
      for (int f = 0; f < kFftsPerRound; ++f) {
        const auto res =
            fft::run_fabric_fft(g, signal_for(g.n, r * kFftsPerRound + f));
        if (!res.ok()) {
          std::printf("cold FFT failed: %s\n", res.status.message().c_str());
          std::exit(1);
        }
        cold_ffts.push_back(res.output);
      }
      for (int i = 0; i < kImagesPerRound; ++i) {
        // Per-request fabric encode: fresh mesh, re-derived artifacts,
        // one setup epoch — what the service amortises across requests.
        fabric::Fabric fab(1, 4);
        const auto art = jpeg::make_pipeline_artifacts(quant);
        jpeg::BlockPipeline pipe(fab, art);
        if (!pipe.setup_status().ok()) {
          std::printf("cold image setup failed: %s\n",
                      pipe.setup_status().message().c_str());
          std::exit(1);
        }
        const int bw = (image.width + 7) / 8;
        const int bh = (image.height + 7) / 8;
        std::vector<jpeg::IntBlock> zz;
        zz.reserve(static_cast<std::size_t>(bw) * bh);
        for (int by = 0; by < bh; ++by) {
          for (int bx = 0; bx < bw; ++bx) {
            const auto res = pipe.encode(jpeg::extract_block(image, bx, by));
            if (!res.ok()) {
              std::printf("cold image block failed: %s\n",
                          res.status.message().c_str());
              std::exit(1);
            }
            zz.push_back(res.zigzagged);
          }
        }
        cold_images.push_back(
            jpeg::encode_image_from_zigzag(image, 75, zz));
      }
    }
    return ms_since(t0);
  };

  // --- warm arm: everything through one long-lived service ---
  service::ServiceOptions opt;
  // A single worker on a single-core host: the measured speedup comes
  // entirely from batching and the artifact/pool caches, with no help
  // (or context-switch penalty) from thread parallelism.  On multi-core
  // hosts raising workers adds a further parallel speedup on top.
  opt.workers = 1;
  opt.queue_capacity = 512;
  opt.batch_limit = 16;
  service::Service svc(opt);
  std::vector<service::JobResult> rb, rf, ri;
  const auto run_warm = [&]() -> double {
    std::vector<service::JobHandle> hb, hf, hi;
    const auto t0 = Clock::now();
    for (int r = 0; r < kRounds; ++r) {
      for (int b = 0; b < kBlocksPerRound; ++b) {
        service::JpegBlockRequest req;
        req.raw = block_for(r * kBlocksPerRound + b);
        req.quant = quant;
        auto sub = svc.submit(service::JobRequest{req});
        if (!sub.accepted()) {
          std::printf("submit rejected: %s\n", sub.status.message().c_str());
          std::exit(1);
        }
        hb.push_back(sub.handle);
      }
      for (int f = 0; f < kFftsPerRound; ++f) {
        service::FftRequest req;
        req.n = g.n;
        req.m = g.m;
        req.input = signal_for(g.n, r * kFftsPerRound + f);
        hf.push_back(svc.submit(service::JobRequest{req}).handle);
      }
      for (int i = 0; i < kImagesPerRound; ++i) {
        service::JpegImageRequest req;
        req.image = image;
        req.quality = 75;
        hi.push_back(svc.submit(service::JobRequest{req}).handle);
      }
    }
    rb.clear();
    rf.clear();
    ri.clear();
    for (const auto& h : hb) rb.push_back(svc.wait(h));
    for (const auto& h : hf) rf.push_back(svc.wait(h));
    for (const auto& h : hi) ri.push_back(svc.wait(h));
    return ms_since(t0);
  };

  // Best-of-kReps per arm; the first warm rep doubles as the warm-up
  // that fills the fabric pool and the artifact cache.
  double cold_ms = run_cold();
  double warm_ms = run_warm();
  for (int rep = 1; rep < kReps; ++rep) {
    cold_ms = std::min(cold_ms, run_cold());
    warm_ms = std::min(warm_ms, run_warm());
  }

  // Untimed sanity check: the fabric-encoded stream is byte-identical to
  // the host encoder, so both bench arms produce real JFIF output.
  if (cold_images.front() != jpeg::encode_image(image, 75)) {
    std::printf("fabric image stream diverged from host encoder!\n");
    return 1;
  }

  // --- verification: warm must equal cold bit for bit ---
  for (std::size_t i = 0; i < rb.size(); ++i) {
    if (!rb[i].ok() ||
        std::get<service::JpegBlockJobResult>(rb[i].payload).zigzagged !=
            cold_blocks[i]) {
      std::printf("block %zu mismatch vs serial!\n", i);
      return 1;
    }
  }
  for (std::size_t i = 0; i < rf.size(); ++i) {
    if (!rf[i].ok() ||
        std::get<service::FftJobResult>(rf[i].payload).output !=
            cold_ffts[i]) {
      std::printf("FFT %zu mismatch vs serial!\n", i);
      return 1;
    }
  }
  for (std::size_t i = 0; i < ri.size(); ++i) {
    if (!ri[i].ok() ||
        std::get<service::JpegImageJobResult>(ri[i].payload).jfif !=
            cold_images[i]) {
      std::printf("image %zu mismatch vs serial!\n", i);
      return 1;
    }
  }
  const int jobs =
      kRounds * (kBlocksPerRound + kFftsPerRound + kImagesPerRound);
  const double speedup = cold_ms / warm_ms;

  TextTable table({"mode", "jobs", "wall ms", "jobs/s"});
  table.add_row({"per-request (cold)", TextTable::integer(jobs),
                 TextTable::num(cold_ms, 1),
                 TextTable::num(1000.0 * jobs / cold_ms, 0)});
  table.add_row({"warm service", TextTable::integer(jobs),
                 TextTable::num(warm_ms, 1),
                 TextTable::num(1000.0 * jobs / warm_ms, 0)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "speedup: %.2fx (every warm result verified identical to serial)\n"
      "cache hit/miss: %lld/%lld, pool reused/constructed: %lld/%lld, "
      "batches: %lld\n",
      speedup, static_cast<long long>(svc.counter("cache.hit")),
      static_cast<long long>(svc.counter("cache.miss")),
      static_cast<long long>(svc.counter("pool.acquire.reused")),
      static_cast<long long>(svc.counter("pool.acquire.constructed")),
      static_cast<long long>(svc.counter("service.batches")));

  obs::BenchReport report("service_throughput");
  report.add("cold_ms", cold_ms, "ms");
  report.add("warm_ms", warm_ms, "ms");
  report.add("speedup", speedup, "x");
  report.add("jobs", jobs, "count");
  report.add("cache_hits", static_cast<double>(svc.counter("cache.hit")),
             "count");
  report.add("pool_reused",
             static_cast<double>(svc.counter("pool.acquire.reused")),
             "count");
  report.add_table("throughput", table);
  if (!report.write()) return 1;

  if (speedup < 2.0) {
    std::printf("FAIL: warm service below the 2x acceptance bar\n");
    return 1;
  }
  return 0;
}

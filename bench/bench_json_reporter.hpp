// Bridges google-benchmark runs into obs::BenchReport so the two
// microbenchmark binaries emit the same BENCH_<name>.json as the plain
// table benches.  The capture reporter keeps the normal console output
// (it subclasses ConsoleReporter) and records every non-errored iteration
// run — adjusted real time plus any user counters — into the report.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "engine/cli.hpp"
#include "obs/bench_report.hpp"

namespace cgra::benchjson {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      std::vector<std::pair<std::string, std::string>> params = {
          {"iterations", std::to_string(run.iterations)}};
      report_->add(name, run.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(run.time_unit), params);
      for (const auto& [key, counter] : run.counters) {
        const bool rate = (counter.flags & benchmark::Counter::kIsRate) != 0;
        report_->add(name + "." + key, counter.value, rate ? "/s" : "",
                     params);
      }
    }
  }

 private:
  obs::BenchReport* report_;
};

/// Drop-in replacement for benchmark_main's main(): runs the registered
/// benchmarks and writes BENCH_<report_name>.json alongside the console
/// output.
inline int run_and_report(int argc, char** argv, const char* report_name) {
  engine::apply_engine_flag(&argc, argv);  // one --engine flag for all mains
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  obs::BenchReport report(report_name);
  CaptureReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return report.write() ? 0 : 1;
}

}  // namespace cgra::benchjson

// Regenerates Table 3: JPEG encoder process annotations.
//
// Left: the paper's published annotations (consumed by the Table-4/5 and
// Figure-16/17 experiments).  Right: the cycle counts of our own fabric
// kernels where a stage runs as real tile assembly — the cross-check that
// the methodology (annotate, then map) works on measured numbers too.
#include <cstdio>

#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/process_table.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto procs = jpeg::paper_table3_processes();
  const auto measured = jpeg::measure_jpeg_kernels();
  obs::BenchReport report("table3_jpeg_processes");
  report.add("shift", static_cast<double>(measured.shift), "cycles");
  report.add("dct", static_cast<double>(measured.dct), "cycles");
  report.add("quantize", static_cast<double>(measured.quantize), "cycles");
  report.add("zigzag", static_cast<double>(measured.zigzag), "cycles");

  std::printf("Table 3 — JPEG process annotations\n\n");
  TextTable table({"process", "insts", "data1", "data2", "data3",
                   "paper runtime(cycles)", "measured(cycles)"});
  // Entropy coding of a representative block on the fabric (the paper
  // splits it into hman1..5; our table-driven form fits one tile).
  std::int64_t hman_cycles = 0;
  {
    SplitMix64 rng(0x7AB1E3);
    jpeg::IntBlock raw{};
    for (auto& px : raw) px = static_cast<int>(rng.next_below(256));
    const auto zz = jpeg::encode_block_stages(raw, jpeg::scaled_quant(50));
    const auto entropy = jpeg::encode_entropy_on_fabric(zz, 0);
    if (entropy.ok()) hman_cycles = entropy.cycles;
  }
  auto measured_for = [&](const std::string& name) -> std::string {
    if (name == "shift") return std::to_string(measured.shift);
    if (name == "DCT") return std::to_string(measured.dct);
    if (name == "Quantize") return std::to_string(measured.quantize);
    if (name == "Zigzag") return std::to_string(measured.zigzag);
    if (name == "Hman1") return std::to_string(hman_cycles) + " (all 5)";
    return "-";  // helper process without a standalone kernel
  };
  for (const auto& p : procs) {
    table.add_row({p.name, TextTable::integer(p.insts),
                   TextTable::integer(p.data1), TextTable::integer(p.data2),
                   TextTable::integer(p.data3),
                   TextTable::integer(p.runtime_cycles),
                   measured_for(p.name)});
  }
  std::printf("%s\n", table.render().c_str());
  report.add("entropy_block", static_cast<double>(hman_cycles), "cycles");
  report.add_table("table3", table);
  if (!report.write()) return 1;
  std::printf(
      "Measured cycles execute the generated tile assembly on the cycle\n"
      "simulator.  The paper's DCT (133324 cycles) is float-heavy; our Q12\n"
      "matrix-multiply DCT is leaner in absolute cycles but remains the\n"
      "dominant process by an order of magnitude, which is the property the\n"
      "mapping experiments depend on.  Entropy coding runs as a single\n"
      "table-driven tile program (the Hman1 row shows its total block cost;\n"
      "the paper needed five tiles for its larger code footprint).  The\n"
      "mapping experiments keep the paper's per-process annotations.\n");
  return 0;
}

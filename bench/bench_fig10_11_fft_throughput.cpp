// Regenerates Figures 10 and 11: 1024-point FFT throughput versus link
// reconfiguration cost L, for 1/2/5/10-column designs.
//
// Process times are measured on the cycle simulator and fed into the
// tau-equation model (Sec. 3.2).  Figure 10 sweeps L in [0, 5000] ns;
// Figure 11 is the same data restricted to [0, 4000] ns where the
// crossovers live, so one table serves both.
#include <cstdio>

#include "common/table.hpp"
#include "dse/fft_perf_model.hpp"
#include "dse/sweep.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto g = fft::make_geometry(1024);
  std::printf("Measuring kernel runtimes on the simulator...\n");
  dse::Sweep sweep;
  const auto times = sweep.measure_process_times(g);
  obs::BenchReport report("fig10_11_fft_throughput");

  std::printf(
      "Figure 10/11 — #1024-point R2FFTs per second vs link cost L\n"
      "(paper anchors at L=0: one col ~12000, ten cols ~45000; PC ~1000)\n\n");

  TextTable table({"L(ns)", "one col", "two cols", "five cols", "10 cols"});
  for (int link = 0; link <= 5000; link += 250) {
    std::vector<std::string> row = {TextTable::integer(link)};
    for (const int cols : {1, 2, 5, 10}) {
      const auto cost = dse::evaluate_fft_design(
          g, times, cols, static_cast<Nanoseconds>(link));
      row.push_back(TextTable::num(cost.throughput_per_sec(), 0));
      if (link == 0) {
        report.add("throughput_at_L0", cost.throughput_per_sec(), "FFT/s",
                   {{"cols", std::to_string(cols)}});
      }
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("fig10_11", table);

  // Crossover report: first L at which each wider design stops beating the
  // next narrower one (Fig. 11's "interesting part").
  const int col_opts[4] = {1, 2, 5, 10};
  for (int i = 3; i > 0; --i) {
    const int wide = col_opts[i];
    const int narrow = col_opts[i - 1];
    int crossover = -1;
    for (int link = 0; link <= 8000; link += 10) {
      const double tw = dse::evaluate_fft_design(g, times, wide, link)
                            .throughput_per_sec();
      const double tn = dse::evaluate_fft_design(g, times, narrow, link)
                            .throughput_per_sec();
      if (tw < tn) {
        crossover = link;
        break;
      }
    }
    if (crossover >= 0) {
      std::printf("%2d cols fall below %d cols at L ~ %d ns\n", wide, narrow,
                  crossover);
    } else {
      std::printf("%2d cols never fall below %d cols for L <= 8000 ns\n",
                  wide, narrow);
    }
    report.add("crossover_link_cost", static_cast<double>(crossover), "ns",
               {{"wide", std::to_string(wide)},
                {"narrow", std::to_string(narrow)}});
  }
  if (!report.write()) return 1;
  std::printf(
      "\nPaper: beyond ~700 ns extra columns stop helping; beyond ~1100 ns\n"
      "they hurt.  The crossovers above must land in the same few-hundred-\n"
      "to-few-thousand-ns decade.\n");
  return 0;
}

// Validation: executed cycle-accurate FFT versus the tau-equation model.
//
// The paper's evaluation is entirely model-based; this bench checks the
// model against ground truth the authors could not produce: the same
// N-point FFT *executed* on the simulator for every column count and a
// range of link costs.  Absolute times differ by construction (the
// executed flow runs one transform with sequential stage epochs; the model
// describes the steady-state initiation interval of a full pipeline), so
// the comparison is about *trends*: both must rank designs the same way as
// the link cost grows.
#include <cstdio>

#include "apps/fft/fabric_fft.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "dse/fft_perf_model.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto g = fft::make_geometry(64, 8);  // 6 stages, 8 rows
  const auto times = dse::measure_process_times(g);
  SplitMix64 rng(2026);
  std::vector<fft::Cplx> x(64);
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};

  std::printf(
      "Executed vs modelled 64-point FFT (8 tiles per column)\n"
      "executed: total ns for one transform, all epochs, cycle-accurate\n"
      "modelled: steady-state ns per transform from the tau equations\n\n");

  obs::BenchReport report("validation_executed_vs_model");
  TextTable table({"cols", "L(ns)", "executed ns", "exec reconfig ns",
                   "modelled ns", "exec slope vs L", "model slope vs L"});
  for (const int cols : {1, 2, 3, 6}) {
    double exec_at[2] = {0, 0};
    double model_at[2] = {0, 0};
    const double link_points[2] = {0.0, 1000.0};
    for (int i = 0; i < 2; ++i) {
      fft::FabricFftOptions opt;
      opt.cols = cols;
      opt.link_cost_ns = link_points[i];
      const auto run = fft::run_fabric_fft(g, x, opt);
      if (!run.ok()) {
        std::printf("executed FFT failed for cols=%d\n", cols);
        return 1;
      }
      exec_at[i] = run.timeline.epoch_compute_ns;
      model_at[i] =
          dse::evaluate_fft_design(g, times, cols, link_points[i]).total_ns();
      if (i == 1) {
        table.add_row(
            {TextTable::integer(cols), TextTable::integer(1000),
             TextTable::num(exec_at[1], 0),
             TextTable::num(run.timeline.reconfig_ns, 0),
             TextTable::num(model_at[1], 0),
             TextTable::num((exec_at[1] - exec_at[0]) / 1000.0, 2),
             TextTable::num((model_at[1] - model_at[0]) / 1000.0, 2)});
        report.add("exec_slope_vs_L", (exec_at[1] - exec_at[0]) / 1000.0,
                   "ns/ns", {{"cols", std::to_string(cols)}});
        report.add("model_slope_vs_L", (model_at[1] - model_at[0]) / 1000.0,
                   "ns/ns", {{"cols", std::to_string(cols)}});
      } else {
        table.add_row({TextTable::integer(cols), TextTable::integer(0),
                       TextTable::num(exec_at[0], 0),
                       TextTable::num(run.timeline.reconfig_ns, 0),
                       TextTable::num(model_at[0], 0), "", ""});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("executed_vs_model", table);
  if (!report.write()) return 1;
  std::printf(
      "Read the slope columns: both executed and modelled costs grow with L\n"
      "faster for wider designs — the mechanism behind Figures 10-12 — even\n"
      "though the absolute numbers describe different execution regimes.\n");
  return 0;
}

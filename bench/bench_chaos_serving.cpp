// Chaos serving bench (the PR acceptance bench): N client threads drive
// a cgra::net::Server through a seeded chaos schedule — worker crashes,
// connection resets on both sides, frame corruption, accept/connect
// failures, pool-lease failures, cache poison, queue stalls and fabric
// tile kills — and every reply must still arrive, exactly once, bit
// identical to the same job executed on a calm in-process service.
//
// Asserted per seed (the run fails otherwise):
//   * zero lost replies: every call() eventually succeeds,
//   * zero duplicated side effects: the chaotic service executed exactly
//     one job per request (idempotent retries hit the reply cache),
//   * bit-identical payloads vs the calm oracle,
//   * p99 latency bounded by 5x the calm wire run's p99,
//   * the chaos schedule actually fired (no vacuous pass).
//
// Results land in BENCH_chaos_serving.json for the CI perf artifact.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cgra/chaos.hpp"
#include "cgra/net.hpp"
#include "engine/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 64;
constexpr int kFftEvery = 8;  ///< 7 JPEG blocks per FFT, like bench_net.
constexpr std::uint64_t kSeeds[] = {1, 2, 3};
constexpr double kP99Factor = 5.0;
/// Floor for the calm p99 before applying the factor: on a quiet host
/// the calm run can be sub-millisecond, which would make the bound
/// noise-dominated.
constexpr double kCalmFloorMs = 2.0;
/// A faulted request's tail is dominated by the client's retry backoff
/// (exponential, base kRetryBackoffMs), not by service time, so the
/// p99 bound allows a few backoff periods on top of the calm-scaled
/// part.  Anything past that means retries are looping, not recovering.
constexpr int kRetryBackoffMs = 25;
constexpr int kRetryAllowance = 6;

cgra::jpeg::IntBlock block_for(int seed) {
  cgra::jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 5) * 31 + i * 11) % 256;
  }
  return raw;
}

cgra::service::JobRequest request_for(int index) {
  using namespace cgra;
  if (index % kFftEvery == kFftEvery - 1) {
    service::FftRequest req;
    req.n = 64;
    req.m = 8;
    req.input.resize(64);
    SplitMix64 rng(static_cast<std::uint64_t>(index) + 1);
    for (auto& v : req.input) {
      v = {rng.next_double(-1, 1) / req.n, rng.next_double(-1, 1) / req.n};
    }
    return service::JobRequest{req};
  }
  service::JpegBlockRequest req;
  req.raw = block_for(index);
  req.quant = jpeg::scaled_quant(75);
  return service::JobRequest{req};
}

bool payload_equal(const cgra::service::JobResult& a,
                   const cgra::service::JobResult& b) {
  using namespace cgra::service;
  if (!a.ok() || !b.ok() || a.payload.index() != b.payload.index()) {
    return false;
  }
  if (const auto* blk = std::get_if<JpegBlockJobResult>(&a.payload)) {
    return blk->zigzagged == std::get<JpegBlockJobResult>(b.payload).zigzagged;
  }
  if (const auto* fft = std::get_if<FftJobResult>(&a.payload)) {
    return fft->output == std::get<FftJobResult>(b.payload).output;
  }
  return false;
}

double percentile(std::vector<double>* sorted, double p) {
  std::sort(sorted->begin(), sorted->end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// The seeded kill schedule.  Rates are low (a handful of firings per
/// ~256-request run) so the p99 bound stays meaningful; frame
/// corruption always hits byte 0 (the magic) so the damage is DETECTED
/// — the protocol carries no checksum, so corrupting a payload byte
/// would silently flip result bits instead of forcing a resync.
cgra::chaos::ChaosPlan plan_for(std::uint64_t seed) {
  using cgra::chaos::Hook;
  cgra::chaos::ChaosPlan plan;
  plan.seed = 0xC4A05000u + seed;
  plan.crash_worker(/*first=*/3 + static_cast<std::int64_t>(seed), 2, 41);
  plan.reset(Hook::kClientRecv, /*first=*/4, 4, 29);
  plan.reset(Hook::kServerRead, /*first=*/60, 2, 97);
  plan.corrupt_byte(Hook::kServerFrame, 0, 0xFF, /*first=*/17, 3, 71);
  plan.corrupt_byte(Hook::kClientFrame, 0, 0xFF, /*first=*/23, 2, 67);
  plan.fail(Hook::kAccept, /*first=*/2, 1);
  plan.fail(Hook::kClientConnect, /*first=*/3, 2, 9);
  plan.fail(Hook::kPoolLease, /*first=*/2, 3, 13);
  plan.fail(Hook::kCachePoison, /*first=*/2, 5, 7);
  plan.delay_ms(Hook::kQueueStall, 5, /*first=*/6, 3, 43);
  plan.kill_tile(/*tile=*/-1, /*cycle=*/0, /*first=*/5, 2, 53);
  return plan;
}

struct RunStats {
  double wall_ms = 0;
  double p50 = 0;
  double p99 = 0;
  int failures = 0;
  int mismatches = 0;
};

/// One wire run (calm when `inj` is null): kClients threads, every
/// reply checked against `expected`.  Idempotency ids make post-send
/// retries safe; the server deduplicates them.
RunStats wire_run(const std::vector<cgra::service::JobResult>& expected,
                  cgra::chaos::ChaosInjector* inj,
                  std::int64_t* executed_jobs) {
  using namespace cgra;
  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.queue_capacity = 512;
  sopt.batch_limit = 16;
  sopt.chaos = inj;
  service::Service svc(sopt);
  net::ServerOptions nopt;
  nopt.chaos = inj;
  net::Server server(&svc, nopt);
  if (const auto s = server.start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.message().c_str());
    std::exit(1);
  }

  const int total = kClients * kRequestsPerClient;
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int> mismatches(kClients, 0);
  std::vector<int> failures(kClients, 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::ClientOptions copt;
      copt.port = server.port();
      copt.max_retries = 8;
      // Post-send retries must arrive after the server's reader landed
      // the original submit, or the dedup check would race; 25 ms is
      // orders of magnitude above the reader's decode-and-submit path.
      copt.retry_backoff_ms = kRetryBackoffMs;
      copt.request_timeout_ms = 10000;
      copt.chaos = inj;
      net::Client client(copt);
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(kRequestsPerClient);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int index = c * kRequestsPerClient + r;
        net::Response resp;
        net::CallOptions call;
        call.idempotency_id = static_cast<std::uint64_t>(index) + 1;
        const auto rt0 = Clock::now();
        const Status s = client.call(request_for(index), &resp, call);
        lat.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - rt0)
                .count());
        if (!s.ok() || !resp.result.ok()) {
          ++failures[static_cast<std::size_t>(c)];
          continue;
        }
        if (!payload_equal(resp.result,
                           expected[static_cast<std::size_t>(index)])) {
          ++mismatches[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  server.stop();
  if (executed_jobs != nullptr) {
    *executed_jobs = svc.counter("service.jobs.submitted");
  }

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (int c = 0; c < kClients; ++c) {
    stats.failures += failures[static_cast<std::size_t>(c)];
    stats.mismatches += mismatches[static_cast<std::size_t>(c)];
    all.insert(all.end(), latencies[static_cast<std::size_t>(c)].begin(),
               latencies[static_cast<std::size_t>(c)].end());
  }
  stats.p50 = percentile(&all, 0.50);
  stats.p99 = percentile(&all, 0.99);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const int total = kClients * kRequestsPerClient;
  std::printf("Chaos serving — %d clients x %d requests, %zu seeds\n\n",
              kClients, kRequestsPerClient, std::size(kSeeds));

  // The calm in-process oracle (also warms nothing the wire runs reuse —
  // each run builds a fresh service, so caches rebuild under chaos too).
  std::vector<service::JobResult> expected;
  expected.reserve(static_cast<std::size_t>(total));
  {
    service::ServiceOptions sopt;
    sopt.workers = 2;
    sopt.queue_capacity = 512;
    sopt.batch_limit = 16;
    service::Service oracle(sopt);
    for (int i = 0; i < total; ++i) {
      expected.push_back(oracle.wait(oracle.submit(request_for(i)).handle));
      if (!expected.back().ok()) {
        std::printf("oracle job %d failed: %s\n", i,
                    expected.back().status.message().c_str());
        return 1;
      }
    }
  }

  const RunStats calm = wire_run(expected, nullptr, nullptr);
  if (calm.failures > 0 || calm.mismatches > 0) {
    std::printf("FAIL: calm run lost %d replies, %d mismatches\n",
                calm.failures, calm.mismatches);
    return 1;
  }
  const double p99_bar = kP99Factor * std::max(calm.p99, kCalmFloorMs) +
                         kRetryAllowance * kRetryBackoffMs;
  std::printf("calm:    %7.1f ms wall, p50 %.2f ms, p99 %.2f ms "
              "(chaos bar %.2f ms)\n",
              calm.wall_ms, calm.p50, calm.p99, p99_bar);

  obs::BenchReport report("chaos_serving");
  report.add("calm_p99_ms", calm.p99, "ms");
  report.add("calm_wall_ms", calm.wall_ms, "ms");

  TextTable table({"seed", "wall ms", "p50 ms", "p99 ms", "fired", "lost",
                   "mismatched"});
  bool ok = true;
  for (const std::uint64_t seed : kSeeds) {
    chaos::ChaosInjector inj(plan_for(seed));
    std::int64_t executed = 0;
    const RunStats chaos_run = wire_run(expected, &inj, &executed);
    const auto fired = inj.fired_total();
    std::printf("seed %llu: %7.1f ms wall, p50 %.2f ms, p99 %.2f ms, "
                "%lld faults fired, %lld jobs executed\n",
                static_cast<unsigned long long>(seed), chaos_run.wall_ms,
                chaos_run.p50, chaos_run.p99,
                static_cast<long long>(fired),
                static_cast<long long>(executed));
    table.add_row({TextTable::integer(static_cast<int>(seed)),
                   TextTable::num(chaos_run.wall_ms, 1),
                   TextTable::num(chaos_run.p50, 2),
                   TextTable::num(chaos_run.p99, 2),
                   TextTable::integer(static_cast<int>(fired)),
                   TextTable::integer(chaos_run.failures),
                   TextTable::integer(chaos_run.mismatches)});
    const std::string prefix = "seed" + std::to_string(seed) + "_";
    report.add(prefix + "p99_ms", chaos_run.p99, "ms");
    report.add(prefix + "faults_fired", static_cast<double>(fired), "count");

    if (chaos_run.failures > 0) {
      std::printf("FAIL: seed %llu lost %d replies\n",
                  static_cast<unsigned long long>(seed), chaos_run.failures);
      ok = false;
    }
    if (chaos_run.mismatches > 0) {
      std::printf("FAIL: seed %llu had %d payload mismatches\n",
                  static_cast<unsigned long long>(seed),
                  chaos_run.mismatches);
      ok = false;
    }
    if (executed != total) {
      std::printf("FAIL: seed %llu executed %lld jobs for %d requests "
                  "(duplicated or dropped side effects)\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<long long>(executed), total);
      ok = false;
    }
    if (fired == 0) {
      std::printf("FAIL: seed %llu fired no faults (vacuous pass)\n",
                  static_cast<unsigned long long>(seed));
      ok = false;
    }
    if (chaos_run.p99 > p99_bar) {
      std::printf("FAIL: seed %llu p99 %.2f ms exceeds the bar %.2f ms\n",
                  static_cast<unsigned long long>(seed), chaos_run.p99,
                  p99_bar);
      ok = false;
    }
  }
  std::printf("\n%s\n", table.render().c_str());
  report.add("requests_per_seed", total, "count");
  report.add_table("chaos_serving", table);
  if (!report.write()) return 1;

  if (!ok) return 1;
  std::printf("all seeds: zero lost replies, zero duplicated side effects, "
              "bit-identical payloads\n");
  return 0;
}

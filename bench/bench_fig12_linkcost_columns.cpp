// Regenerates Figure 12: throughput versus column count, one curve per
// link-reconfiguration cost in {0, 100, ..., 1500} ns.
//
// The paper's reading: for small L more columns help; near L ~ 700 ns the
// benefit flattens; above ~1100 ns adding columns reduces throughput.
#include <cstdio>

#include "common/table.hpp"
#include "dse/fft_perf_model.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto g = fft::make_geometry(1024);
  std::printf("Measuring kernel runtimes on the simulator...\n");
  const auto times = dse::measure_process_times(g);
  obs::BenchReport report("fig12_linkcost_columns");

  std::printf("Figure 12 — throughput vs #columns for several link costs\n\n");

  const auto cols_opts = dse::usable_column_counts(g);
  std::vector<std::string> header = {"cost(ns)"};
  for (const int c : cols_opts) header.push_back(std::to_string(c) + " col");
  TextTable table(header);

  for (int cost = 0; cost <= 1500; cost += 100) {
    std::vector<std::string> row = {TextTable::integer(cost)};
    for (const int cols : cols_opts) {
      const auto eval = dse::evaluate_fft_design(
          g, times, cols, static_cast<Nanoseconds>(cost));
      row.push_back(TextTable::num(eval.throughput_per_sec(), 0));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("fig12", table);

  // Shape summary: best column count per cost level.
  std::printf("Best design per link cost:\n");
  for (int cost = 0; cost <= 1500; cost += 100) {
    int best_cols = 0;
    double best = -1.0;
    for (const int cols : cols_opts) {
      const double t = dse::evaluate_fft_design(g, times, cols, cost)
                           .throughput_per_sec();
      if (t > best) {
        best = t;
        best_cols = cols;
      }
    }
    std::printf("  L=%4d ns -> %2d columns (%.0f FFT/s)\n", cost, best_cols,
                best);
    report.add("best_columns", static_cast<double>(best_cols), "cols",
               {{"link_cost_ns", std::to_string(cost)}});
  }
  if (!report.write()) return 1;
  return 0;
}

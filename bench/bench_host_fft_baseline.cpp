// The paper's PC baseline: "throughput in a high end PC computer is
// roughly 1000 [1024-point FFTs per second]" (2013 hardware).
//
// google-benchmark measures our portable host radix-2 FFT; the final
// benchmark prints the modelled fabric throughput next to it so the
// comparison the paper makes (fabric ~45x a PC) can be re-examined on
// today's hardware.
#include <benchmark/benchmark.h>

#include "apps/fft/reference.hpp"
#include "bench_json_reporter.hpp"
#include "common/prng.hpp"
#include "dse/fft_perf_model.hpp"

namespace {

std::vector<cgra::fft::Cplx> random_signal(std::size_t n) {
  cgra::SplitMix64 rng(0xABCD);
  std::vector<cgra::fft::Cplx> x(n);
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
  return x;
}

void BM_HostFft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_signal(n);
  for (auto _ : state) {
    auto x = base;
    cgra::fft::fft_dif(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["FFTs/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostFft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HostFftPlanned(benchmark::State& state) {
  // Precomputed twiddles: the fair "optimised PC implementation" baseline.
  const auto n = static_cast<std::size_t>(state.range(0));
  const cgra::fft::FftPlan plan(n);
  const auto base = random_signal(n);
  for (auto _ : state) {
    auto x = base;
    plan.transform_dif(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.counters["FFTs/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostFftPlanned)->Arg(256)->Arg(1024)->Arg(4096);

void BM_HostDftNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto base = random_signal(n);
  for (auto _ : state) {
    auto y = cgra::fft::dft_naive(base);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_HostDftNaive)->Arg(256);

void BM_ModeledFabricThroughput(benchmark::State& state) {
  // Not a wall-clock benchmark: evaluates the tau model once per iteration
  // and reports the modelled fabric throughput as a counter, so the bench
  // output juxtaposes PC vs fabric like the paper's Sec. 3.3 remark.
  const auto g = cgra::fft::make_geometry(1024);
  const auto times = cgra::dse::measure_process_times(g);
  double modeled = 0.0;
  for (auto _ : state) {
    const auto cost = cgra::dse::evaluate_fft_design(g, times, 10, 0.0);
    modeled = cost.throughput_per_sec();
    benchmark::DoNotOptimize(modeled);
  }
  state.counters["modeled_fabric_FFTs/s"] = modeled;
}
BENCHMARK(BM_ModeledFabricThroughput);

}  // namespace

int main(int argc, char** argv) {
  return cgra::benchjson::run_and_report(argc, argv, "host_fft_baseline");
}

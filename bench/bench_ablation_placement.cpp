// Ablation: physical placement and Equation 1's term C.
//
// "Careful placement of the p's to the P's can help in reducing the
// overall runtime" (Sec. 2).  This bench binds the JPEG pipeline to 8
// tiles, places it on a 4x4 mesh three ways (snake / row-major /
// deterministic scatter), evaluates the routed copy cost per block, and
// shows what the greedy swap improver recovers from the bad placements.
#include <cstdio>

#include "apps/jpeg/process_table.hpp"
#include "common/table.hpp"
#include "mapping/placement.hpp"
#include "mapping/rebalance.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;
  using mapping::PlacementStrategy;

  const auto net = jpeg::jpeg_split_pipeline();
  const auto binding = mapping::rebalance(
      net, 8, mapping::RebalanceAlgorithm::kTwo, CostParams{});
  std::printf("Ablation — placement (term C), JPEG on 8 tiles of a 4x4 "
              "mesh\nBinding: %s\n\n",
              binding.describe(net).c_str());

  const interconnect::CopyCostModel copy{5 * kCycleNs, 100.0};
  obs::BenchReport report("ablation_placement");
  TextTable table({"placement", "non-neighbor edges", "extra hops",
                   "copy ns/block", "II(us)", "img/s (200x200)"});
  for (const auto strategy :
       {PlacementStrategy::kSnake, PlacementStrategy::kRowMajor,
        PlacementStrategy::kScatter}) {
    const auto p = mapping::place(binding, 4, 4, strategy);
    const auto pe = mapping::evaluate_placement(net, binding, p, copy);
    const auto eval =
        mapping::evaluate_with_placement(net, binding, p, CostParams{}, copy);
    table.add_row({mapping::placement_strategy_name(strategy),
                   TextTable::integer(pe.non_neighbor_edges),
                   TextTable::integer(pe.total_hops),
                   TextTable::num(pe.copy_ns_per_item, 0),
                   TextTable::num(eval.ii_ns / 1000.0, 2),
                   TextTable::num(
                       eval.items_per_sec / jpeg::kPaperImageBlocks, 2)});
    report.add("copy_ns_per_block", pe.copy_ns_per_item, "ns",
               {{"placement", mapping::placement_strategy_name(strategy)}});

    // Greedy improvement from this starting point.
    const auto improved = mapping::improve_placement(net, binding, p, copy);
    const auto ipe = mapping::evaluate_placement(net, binding, improved, copy);
    table.add_row({std::string("  +local search"),
                   TextTable::integer(ipe.non_neighbor_edges),
                   TextTable::integer(ipe.total_hops),
                   TextTable::num(ipe.copy_ns_per_item, 0), "", ""});
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("placement", table);
  if (!report.write()) return 1;
  std::printf(
      "Adjacent (1-hop) edges ride the free semi-systolic link; every extra\n"
      "hop pays a routed cp process (5 instructions/word) plus a link\n"
      "reconfiguration.  Replicated groups charge their worst replica, so\n"
      "even snake order keeps a residual cost once the DCT fans out; the\n"
      "greedy swap improver converges all starts to the same optimum here.\n");
  return 0;
}

// Fault-rate sweep over the recovery layer (docs/FAULTS.md).
//
// Part 1 replays deterministic single-fault scenarios against the resilient
// JPEG block pipeline (shift -> DCT -> quantize -> zigzag on a 2x7 mesh
// under the RecoveryManager) and reports the price of each recovery path:
// ICAP retries, checkpoint rollbacks and rebalance-around-a-dead-tile.
//
// Part 2 sweeps a shower of random SEUs at increasing upset counts over the
// same mapping — the classic fault-rate-vs-availability curve.  Every plan
// is PRNG-seeded, so the whole table replays identically run after run.
//
// Part 3 measures the ICAP fault path on the fabric FFT: readback-verify
// occupancy and bounded retry cost as fractions of the clean reconfiguration
// time (the overhead a self-checking ICAP adds to Equation 1's term B).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/fft/fabric_fft.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "faults/recovery.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

namespace {

using namespace cgra;

jpeg::IntBlock sample_block(std::uint64_t seed) {
  SplitMix64 rng(seed);
  jpeg::IntBlock b{};
  for (auto& v : b) v = static_cast<int>(rng.next_below(256));
  return b;
}

cgra::Nanoseconds total_retry_ns(const config::Timeline& tl) {
  cgra::Nanoseconds total = 0.0;
  for (const auto& t : tl.transitions) total += t.retry_ns;
  return total;
}

cgra::Nanoseconds total_verify_ns(const config::Timeline& tl) {
  cgra::Nanoseconds total = 0.0;
  for (const auto& t : tl.transitions) total += t.verify_ns;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  const auto raw = sample_block(2026);
  const auto quant = jpeg::scaled_quant(50);
  const auto golden = jpeg::encode_block_stages(raw, quant);

  // Fault-free baseline: everything below is measured against this.
  const auto clean =
      jpeg::encode_block_resilient(raw, quant, faults::FaultPlan{});
  if (!clean.report.ok) {
    std::printf("clean run failed: %s\n",
                clean.report.status.message().c_str());
    return 1;
  }
  const Nanoseconds clean_ns = clean.report.timeline.total_ns();
  const auto horizon = ns_to_cycles_ceil(clean_ns);
  obs::BenchReport report("fault_recovery");
  report.add("clean_run", clean_ns, "ns");

  std::printf(
      "Part 1 — deterministic fault scenarios, resilient JPEG block\n"
      "(2x7 mesh, clean run %.1f us, %lld cycles)\n\n",
      clean_ns / 1000.0, static_cast<long long>(horizon));

  struct Scenario {
    std::string name;
    faults::FaultPlan plan;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", faults::FaultPlan{}});
  {
    faults::FaultPlan p;
    p.corrupt_icap(1, 2);  // under the retry bound: re-stream recovers
    scenarios.push_back({"icap x2 (retries)", p});
  }
  {
    faults::FaultPlan p;
    p.corrupt_icap(1, 1000);  // past every budget: rollback, then give up
    scenarios.push_back({"icap x1000 (give up)", p});
  }
  {
    faults::FaultPlan p;
    p.flip_inst_bit(horizon / 4, 1);  // SEU in live code: scrub + rollback
    scenarios.push_back({"imem SEU, busy tile", p});
  }
  {
    faults::FaultPlan p;
    p.kill_tile(horizon / 4, 1);  // permanent: evacuate + rebalance
    scenarios.push_back({"tile death", p});
  }
  {
    faults::FaultPlan p;
    p.fail_link(horizon / 4, 1);  // output driver gone: also permanent
    scenarios.push_back({"link failure", p});
  }

  TextTable t1({"scenario", "ok", "bit-exact", "retries", "scrubs",
                "rollbacks", "rebal", "recovery(us)", "total(us)",
                "overhead"});
  for (const auto& s : scenarios) {
    const auto res = jpeg::encode_block_resilient(raw, quant, s.plan);
    const Nanoseconds total = res.report.timeline.total_ns();
    const double overhead = clean_ns > 0.0 ? total / clean_ns - 1.0 : 0.0;
    t1.add_row({s.name, res.report.ok ? "yes" : "no",
                res.report.ok && res.zigzagged == golden ? "yes" : "no",
                TextTable::integer(res.report.icap_retries),
                TextTable::integer(res.report.scrub_detections),
                TextTable::integer(res.report.rollbacks),
                TextTable::integer(res.report.rebalances),
                TextTable::num(res.report.recovery_ns / 1000.0, 1),
                TextTable::num(total / 1000.0, 1),
                res.report.ok ? TextTable::num(100.0 * overhead, 1) + "%"
                              : "-"});
    if (res.report.ok) {
      report.add("recovery_overhead_pct", 100.0 * overhead, "%",
                 {{"scenario", s.name}});
    }
  }
  std::printf("%s\n", t1.render().c_str());
  report.add_table("deterministic_scenarios", t1);

  std::printf(
      "Part 2 — random SEU shower vs upset count (5 seeded trials each)\n"
      "recovered = run completed; bit-exact = output matches the host\n"
      "reference.  imem upsets are always caught (architectural fault or\n"
      "imem fingerprint scrub); a dmem upset landing in the in-flight data\n"
      "block between checkpoints can still slip through: docs/FAULTS.md.\n\n");

  TextTable t2({"upsets", "recovered", "bit-exact", "avg rollbacks",
                "avg recovery(us)", "avg overhead"});
  for (const int upsets : {1, 2, 4, 8, 16, 32}) {
    int recovered = 0;
    int exact = 0;
    double rollbacks = 0.0;
    double recovery_us = 0.0;
    double overhead = 0.0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto plan = faults::FaultPlan::random_seus(
          0xBEEF + static_cast<std::uint64_t>(upsets * 97 + trial), 14,
          horizon, upsets, 0.5);
      const auto res = jpeg::encode_block_resilient(raw, quant, plan);
      if (res.report.ok) {
        ++recovered;
        if (res.zigzagged == golden) ++exact;
        overhead += res.report.timeline.total_ns() / clean_ns - 1.0;
      }
      rollbacks += res.report.rollbacks;
      recovery_us += res.report.recovery_ns / 1000.0;
    }
    t2.add_row({TextTable::integer(upsets),
                TextTable::integer(recovered) + "/" +
                    TextTable::integer(kTrials),
                TextTable::integer(exact) + "/" + TextTable::integer(kTrials),
                TextTable::num(rollbacks / kTrials, 1),
                TextTable::num(recovery_us / kTrials, 1),
                TextTable::num(recovered > 0 ? 100.0 * overhead / recovered
                                             : 0.0,
                               1) +
                    "%"});
    report.add("seu_recovered", static_cast<double>(recovered), "trials",
               {{"upsets", std::to_string(upsets)},
                {"trials", std::to_string(kTrials)}});
  }
  std::printf("%s\n", t2.render().c_str());
  report.add_table("seu_shower", t2);

  std::printf(
      "Part 3 — ICAP fault path on the 1024-point fabric FFT, 8x10 mesh\n"
      "(m=128, ten columns).  verify = full-bandwidth readback after every\n"
      "stream; corrupt = a 3-shot in-flight corruption of tile 0 absorbed\n"
      "by bounded retry.\n\n");

  const auto g = fft::make_geometry(1024, 128);
  std::vector<fft::Cplx> x(1024);
  {
    SplitMix64 rng(7);
    for (auto& v : x) {
      v = {static_cast<double>(rng.next_below(2000)) / 4000.0 - 0.25,
           static_cast<double>(rng.next_below(2000)) / 4000.0 - 0.25};
    }
  }

  fft::FabricFftOptions base;
  base.cols = 10;
  const auto r0 = fft::run_fabric_fft(g, x, base);

  fft::FabricFftOptions verify = base;
  verify.icap_faults.verify_readback = true;
  verify.icap_faults.verify_cost_factor = 1.0;
  const auto r1 = fft::run_fabric_fft(g, x, verify);

  faults::FaultPlan fft_plan;
  fft_plan.corrupt_icap(0, 3);
  faults::FaultInjector tap(fft_plan);
  fft::FabricFftOptions faulty = verify;
  faulty.icap_faults.tap = &tap;
  faulty.icap_faults.max_retries = 4;
  faulty.icap_faults.retry_backoff_ns = 100.0;
  const auto r2 = fft::run_fabric_fft(g, x, faulty);

  TextTable t3({"config", "ok", "rms vs clean", "reconfig(us)",
                "verify(us)", "retry(us)", "B overhead"});
  const double b0 = r0.timeline.reconfig_ns;
  const fft::FabricFftResult* runs[3] = {&r0, &r1, &r2};
  const char* names[3] = {"baseline", "verify", "verify+corrupt x3"};
  for (int i = 0; i < 3; ++i) {
    const auto& r = *runs[i];
    t3.add_row({names[i], r.ok() ? "yes" : "no",
                TextTable::num(fft::rms_error(r.output, r0.output), 9),
                TextTable::num(r.timeline.reconfig_ns / 1000.0, 1),
                TextTable::num(total_verify_ns(r.timeline) / 1000.0, 1),
                TextTable::num(total_retry_ns(r.timeline) / 1000.0, 1),
                TextTable::num(
                    100.0 * (r.timeline.reconfig_ns / b0 - 1.0), 1) +
                    "%"});
    report.add("icap_b_overhead_pct",
               100.0 * (r.timeline.reconfig_ns / b0 - 1.0), "%",
               {{"config", names[i]}});
  }
  std::printf("%s\n", t3.render().c_str());
  report.add_table("icap_fault_path", t3);
  if (!report.write()) return 1;
  std::printf(
      "Shape checks: every deterministic scenario but the forced give-up\n"
      "recovers bit-exactly; retry and verify costs land in term B, not in\n"
      "the output; the give-up path reports ok=no instead of bad data.\n");
  return 0;
}

// Regenerates Table 4: the five manual mappings of the JPEG encoder
// (1, 2, 10, 13 and 5 tiles) with per-image time, average utilisation,
// images per second and the reconfiguration / reLink flags.
//
// Workload: the paper's 200x200-pixel image = 625 8x8 blocks.
#include <cstdio>
#include <map>
#include <string>

#include "apps/jpeg/process_table.hpp"
#include "common/table.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;
  using mapping::evaluate;

  std::printf("Table 4 — JPEG encoder manual mappings (200x200 image, %d "
              "blocks)\n\n",
              jpeg::kPaperImageBlocks);

  struct PaperRow {
    double time_us;
    double util;
    double images;
    const char* reconfig;
    const char* relink;
  };
  const std::map<std::string, PaperRow> paper = {
      {"Impl1", {419, 1.00, 2.98, "yes", "no"}},
      {"Impl2", {334, 0.62, 3.74, "yes", "no"}},
      {"Impl3", {334, 0.12, 3.74, "no", "no"}},
      {"Impl4", {84, 0.37, 14.88, "no", "yes"}},
      {"Impl5", {86, 0.98, 14.43, "yes", "yes"}},
  };

  obs::BenchReport report("table4_jpeg_manual");
  TextTable table({"impl", "tiles", "binding", "II(us)", "paper II(us)",
                   "util", "paper util", "images/s", "paper img/s",
                   "reconfig", "reLink"});
  for (const auto& m : jpeg::table4_manual_mappings()) {
    const auto eval = evaluate(m.network, m.binding, CostParams{});
    const double images_per_sec =
        eval.items_per_sec / jpeg::kPaperImageBlocks;
    const auto& p = paper.at(m.name);
    report.add("images_per_sec", images_per_sec, "img/s",
               {{"impl", m.name}, {"tiles", std::to_string(m.tiles)}});
    report.add("utilization", eval.avg_utilization, "",
               {{"impl", m.name}, {"tiles", std::to_string(m.tiles)}});
    table.add_row({m.name, TextTable::integer(m.tiles),
                   m.binding.describe(m.network).substr(0, 40),
                   TextTable::num(eval.ii_ns / 1000.0, 1),
                   TextTable::num(p.time_us, 0),
                   TextTable::num(eval.avg_utilization, 2),
                   TextTable::num(p.util, 2),
                   TextTable::num(images_per_sec, 2),
                   TextTable::num(p.images, 2),
                   eval.needs_reconfig ? "yes" : "no",
                   eval.needs_relink ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("table4", table);
  if (!report.write()) return 1;
  std::printf(
      "Shape checks: Impl2 == Impl3 and Impl4 ~= Impl5 in throughput (the\n"
      "DCT tile dominates unless it is split); splitting the DCT lifts\n"
      "throughput ~4x; utilisation peaks for the 5-tile Impl5.\n");
  return 0;
}

// Regenerates Figure 8: twiddle-factor classes per stage and the reload
// reduction from the Red/Green/Yellow/Blue scheme.
//
// For the paper's illustration geometry (64-point, M=8) the per-(row,
// stage) classes are printed as a grid; for the evaluation geometry
// (1024-point, M=128) only the aggregate counts are shown, next to the
// paper's closed-form reduction claim:
//   naive  N/2 * log2 N  ->  optimised ~ (log2 N - log2 M) * N/2 words.
#include <cstdio>
#include <map>

#include "apps/fft/twiddle.hpp"
#include "common/table.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using fft::TwiddleClass;
  obs::BenchReport report("fig8_twiddles");

  // ---- Figure 8 grid: 64-point, M = 8 ----
  {
    const auto g = fft::make_geometry(64, 8);
    const auto tw = fft::analyze_twiddles(g, 1);  // single column
    std::printf("Figure 8 — twiddle classes, 64-point FFT, M=8, one column\n");
    std::printf("(steady state; R=red/preloaded, G=green/generated, "
                "B=blue/resident, Y=yellow/ICAP reload)\n\n");
    std::map<std::pair<int, int>, const fft::TwiddleSlot*> grid;
    for (const auto& slot : tw.slots) {
      grid[{slot.row, slot.stage}] = &slot;
    }
    TextTable table({"row", "s0", "s1", "s2", "s3", "s4", "s5"});
    for (int r = 0; r < g.rows; ++r) {
      std::vector<std::string> row = {TextTable::integer(r)};
      for (int s = 0; s < g.stages; ++s) {
        const auto* slot = grid.at({r, s});
        std::string cell(1, "RBGY"[static_cast<int>(slot->cls)]);
        cell += "(" + std::to_string(slot->words) + ")";
        row.push_back(cell);
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
    report.add_table("fig8_grid", table);
  }

  // ---- Aggregates for the evaluation geometry ----
  {
    const auto g = fft::make_geometry(1024);
    std::printf(
        "1024-point, M=128 — reload accounting per transform (words):\n\n");
    TextTable table({"cols", "naive", "empirical yellow", "green generated",
                     "paper rule (events x N/2)"});
    for (const int cols : {1, 2, 5, 10}) {
      const auto tw = fft::analyze_twiddles(g, cols);
      table.add_row({TextTable::integer(cols),
                     TextTable::integer(tw.naive_words),
                     TextTable::integer(tw.reload_words),
                     TextTable::integer(tw.generated_words),
                     TextTable::integer(fft::paper_reload_words(g, cols))});
      report.add("reload_words", static_cast<double>(tw.reload_words),
                 "words", {{"cols", std::to_string(cols)}});
    }
    std::printf("%s\n", table.render().c_str());
    report.add_table("reload_accounting", table);
    std::printf(
        "Paper claim: reload (log2N - log2M) x N/2 = %lld words instead of\n"
        "N/2 x log2N = %lld — a %.1fx reduction.  Our empirical classifier\n"
        "lands in the same decade at every column count and reaches zero for\n"
        "the fully spatial design, but is not monotone in between (each\n"
        "column pays its own wrap-around reload); see EXPERIMENTS.md.\n",
        fft::paper_reload_estimate(g),
        static_cast<long long>(g.n) / 2 * g.stages,
        static_cast<double>(g.n) / 2 * g.stages /
            static_cast<double>(fft::paper_reload_estimate(g)));
  }
  if (!report.write()) return 1;
  return 0;
}

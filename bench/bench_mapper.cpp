// Benchmarks the automatic mapper (src/mapper/): solve time and mapped
// quality for both solvers over eight synthetic process networks plus the
// paper's five JPEG budgets (Table 3/4).
//
// Emits BENCH_mapper.json with, per case and solver, the solve time and the
// mapped per-item makespan, plus the aggregates the CI gate consumes
// (scripts/check_mapper_gate.py):
//
//   calibration_ms          fixed count of cost-model evaluations, measured
//                           in the SAME run — the machine-speed yardstick
//                           that makes the solve-time gate host-independent
//   exact_solve_ms_total    sum of exact solve times across all cases
//   anneal_solve_ms_total   sum of anneal solve times across all cases
//   worst_mapped_vs_manual  max over JPEG budgets of exact/manual makespan
//                           (<= 1.0: the mapper re-derives or beats the
//                           paper's hand mappings)
//   worst_anneal_vs_exact   max over cases with a completed exact proof of
//                           anneal/exact makespan (<= 1.05 acceptance bar)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/jpeg/process_table.hpp"
#include "cgra/mapper.hpp"
#include "common/table.hpp"
#include "engine/cli.hpp"
#include "obs/bench_report.hpp"

namespace {

using namespace cgra;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

procnet::Process proc(std::string name, std::int64_t cycles,
                      bool replicable = true) {
  return procnet::Process{std::move(name), 10, 8, 8, 8, cycles, 1, replicable};
}

struct Case {
  std::string name;
  procnet::ProcessNetwork net;
};

/// Eight synthetic shapes spanning the structures the solvers must handle:
/// balanced and skewed chains, fan-out, fan-in, a diamond DAG, disconnected
/// islands, replication-friendly skew and copy-dominated fat edges.
std::vector<Case> synthetic_cases() {
  std::vector<Case> cases;

  Case even{"chain4_even", {}};
  for (int i = 0; i < 4; ++i) even.net.add_process(proc("p" + std::to_string(i), 1000));
  for (int i = 0; i + 1 < 4; ++i) even.net.add_edge(i, i + 1, 64);
  cases.push_back(std::move(even));

  Case hot{"chain8_hot_middle", {}};
  for (int i = 0; i < 8; ++i) {
    hot.net.add_process(proc("p" + std::to_string(i), i == 4 ? 8000 : 500));
  }
  for (int i = 0; i + 1 < 8; ++i) hot.net.add_edge(i, i + 1, 64);
  cases.push_back(std::move(hot));

  Case star{"star_fanout", {}};
  star.net.add_process(proc("hub", 2000));
  for (int i = 0; i < 5; ++i) {
    star.net.add_process(proc("leaf" + std::to_string(i), 700));
    star.net.add_edge(0, i + 1, 32);
  }
  cases.push_back(std::move(star));

  Case gather{"gather_fanin", {}};
  for (int i = 0; i < 5; ++i) {
    gather.net.add_process(proc("src" + std::to_string(i), 600));
  }
  gather.net.add_process(proc("sink", 2500));
  for (int i = 0; i < 5; ++i) gather.net.add_edge(i, 5, 32);
  cases.push_back(std::move(gather));

  Case diamond{"diamond", {}};
  diamond.net.add_process(proc("split", 800));
  diamond.net.add_process(proc("left", 1500));
  diamond.net.add_process(proc("right", 1500));
  diamond.net.add_process(proc("join", 800));
  diamond.net.add_edge(0, 1, 64);
  diamond.net.add_edge(0, 2, 64);
  diamond.net.add_edge(1, 3, 64);
  diamond.net.add_edge(2, 3, 64);
  cases.push_back(std::move(diamond));

  Case islands{"two_islands", {}};
  for (int i = 0; i < 6; ++i) {
    islands.net.add_process(proc("p" + std::to_string(i), 900));
  }
  islands.net.add_edge(0, 1, 64);
  islands.net.add_edge(1, 2, 64);
  islands.net.add_edge(3, 4, 64);
  islands.net.add_edge(4, 5, 64);
  cases.push_back(std::move(islands));

  Case skew{"chain6_skewed", {}};
  const std::int64_t cycles[6] = {200, 6000, 400, 3000, 150, 900};
  for (int i = 0; i < 6; ++i) {
    skew.net.add_process(proc("p" + std::to_string(i), cycles[i]));
  }
  for (int i = 0; i + 1 < 6; ++i) skew.net.add_edge(i, i + 1, 64);
  cases.push_back(std::move(skew));

  Case fat{"chain5_fat_edges", {}};
  for (int i = 0; i < 5; ++i) {
    fat.net.add_process(proc("p" + std::to_string(i), 300));
  }
  for (int i = 0; i + 1 < 5; ++i) fat.net.add_edge(i, i + 1, 256);
  cases.push_back(std::move(fat));

  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapper::MappedNetwork;
  using mapper::MapperOptions;
  using mapper::SolverKind;

  obs::BenchReport report("mapper");

  // --- same-run machine-speed yardstick -----------------------------------
  // A fixed count of shared-cost-model evaluations of the JPEG pipeline.
  // Solve-time budgets gate the ratio solve_ms / calibration_ms, so a slow
  // CI host scales both sides equally (scripts/check_mapper_gate.py).
  const auto jpeg_net = jpeg::jpeg_main_pipeline();
  const mapper::CostModel cal_cost;
  const auto cal_binding = mapper::seed_bindings(jpeg_net, 4, cal_cost.params);
  const mapping::Placement cal_place = mapping::place(
      cal_binding.back(), 4, 4, mapping::PlacementStrategy::kSnake);
  const auto cal_start = Clock::now();
  double checksum = 0.0;
  constexpr int kCalibrationEvals = 2000;
  for (int i = 0; i < kCalibrationEvals; ++i) {
    checksum += mapper::score_mapping(jpeg_net, cal_binding.back(), cal_place,
                                      cal_cost)
                    .total_ns();
  }
  const double calibration_ms = ms_since(cal_start);
  report.add("calibration_ms", calibration_ms, "ms",
             {{"evals", std::to_string(kCalibrationEvals)}});
  std::printf("calibration: %d cost evaluations in %.2f ms (checksum %g)\n\n",
              kCalibrationEvals, calibration_ms, checksum);

  double exact_total_ms = 0.0;
  double anneal_total_ms = 0.0;
  double worst_anneal_vs_exact = 0.0;

  // --- synthetic shapes, both solvers -------------------------------------
  TextTable synth({"case", "procs", "exact ms", "exact ns/item", "opt",
                   "anneal ms", "anneal ns/item", "anneal/exact"});
  for (const auto& c : synthetic_cases()) {
    // Tile budget 6 of the 16-tile mesh: enough to replicate the hot
    // stages, small enough that the exact proof completes — the quality
    // ratio below is only meaningful against a completed oracle.
    MapperOptions exact_opt;
    exact_opt.solver = SolverKind::kExact;
    exact_opt.max_tiles = 6;
    auto start = Clock::now();
    const MappedNetwork exact = mapper::map_network(c.net, 4, 4, exact_opt);
    const double exact_ms = ms_since(start);

    MapperOptions anneal_opt;
    anneal_opt.solver = SolverKind::kAnneal;
    anneal_opt.max_tiles = 6;
    start = Clock::now();
    const MappedNetwork anneal = mapper::map_network(c.net, 4, 4, anneal_opt);
    const double anneal_ms = ms_since(start);

    if (!exact.ok() || !anneal.ok()) {
      std::fprintf(stderr, "mapping %s failed: %s / %s\n", c.name.c_str(),
                   exact.status.message().c_str(),
                   anneal.status.message().c_str());
      return 1;
    }
    exact_total_ms += exact_ms;
    anneal_total_ms += anneal_ms;
    const double quality = anneal.cost.total_ns() / exact.cost.total_ns();
    if (exact.optimal && quality > worst_anneal_vs_exact) {
      worst_anneal_vs_exact = quality;
    }
    report.add(c.name + ".exact.solve_ms", exact_ms, "ms",
               {{"solver", "exact"}});
    report.add(c.name + ".exact.total_ns", exact.cost.total_ns(), "ns",
               {{"solver", "exact"}});
    report.add(c.name + ".anneal.solve_ms", anneal_ms, "ms",
               {{"solver", "anneal"}});
    report.add(c.name + ".anneal.total_ns", anneal.cost.total_ns(), "ns",
               {{"solver", "anneal"}});
    synth.add_row({c.name, TextTable::integer(c.net.size()),
                   TextTable::num(exact_ms, 2),
                   TextTable::num(exact.cost.total_ns(), 0),
                   exact.optimal ? "yes" : "no", TextTable::num(anneal_ms, 2),
                   TextTable::num(anneal.cost.total_ns(), 0),
                   TextTable::num(quality, 3)});
  }
  std::printf("%s\n", synth.render().c_str());
  report.add_table("synthetic", synth);

  // --- the paper's JPEG budgets vs the manual Table-4 mappings ------------
  double worst_mapped_vs_manual = 0.0;
  TextTable jpeg_table({"impl", "tiles", "manual ns/item", "exact ns/item",
                        "mapped/manual", "exact ms", "opt", "anneal/exact"});
  for (const auto& m : jpeg::table4_manual_mappings()) {
    MapperOptions opt;
    opt.max_tiles = m.tiles;
    const MappedNetwork manual =
        mapper::score_manual(m.network, m.binding, 4, 4, opt);

    opt.solver = SolverKind::kExact;
    auto start = Clock::now();
    const MappedNetwork exact = mapper::map_network(m.network, 4, 4, opt);
    const double exact_ms = ms_since(start);

    opt.solver = SolverKind::kAnneal;
    start = Clock::now();
    const MappedNetwork anneal = mapper::map_network(m.network, 4, 4, opt);
    const double anneal_ms = ms_since(start);

    if (!manual.ok() || !exact.ok() || !anneal.ok()) {
      std::fprintf(stderr, "mapping %s failed\n", m.name.c_str());
      return 1;
    }
    exact_total_ms += exact_ms;
    anneal_total_ms += anneal_ms;
    const double vs_manual = exact.cost.total_ns() / manual.cost.total_ns();
    if (vs_manual > worst_mapped_vs_manual) worst_mapped_vs_manual = vs_manual;
    const double quality = anneal.cost.total_ns() / exact.cost.total_ns();
    if (exact.optimal && quality > worst_anneal_vs_exact) {
      worst_anneal_vs_exact = quality;
    }
    report.add(m.name + ".exact.solve_ms", exact_ms, "ms",
               {{"tiles", std::to_string(m.tiles)}});
    report.add(m.name + ".anneal.solve_ms", anneal_ms, "ms",
               {{"tiles", std::to_string(m.tiles)}});
    report.add(m.name + ".mapped_vs_manual", vs_manual, "",
               {{"tiles", std::to_string(m.tiles)}});
    jpeg_table.add_row(
        {m.name, TextTable::integer(m.tiles),
         TextTable::num(manual.cost.total_ns(), 0),
         TextTable::num(exact.cost.total_ns(), 0),
         TextTable::num(vs_manual, 3), TextTable::num(exact_ms, 1),
         exact.optimal ? "yes" : "no", TextTable::num(quality, 3)});
  }
  std::printf("%s\n", jpeg_table.render().c_str());
  report.add_table("jpeg_budgets", jpeg_table);

  report.add("exact_solve_ms_total", exact_total_ms, "ms", {});
  report.add("anneal_solve_ms_total", anneal_total_ms, "ms", {});
  report.add("worst_mapped_vs_manual", worst_mapped_vs_manual, "", {});
  report.add("worst_anneal_vs_exact", worst_anneal_vs_exact, "", {});
  std::printf(
      "totals: exact %.1f ms, anneal %.1f ms, calibration %.2f ms\n"
      "worst mapped/manual %.4f (gate <= 1.0), worst anneal/exact %.4f "
      "(gate <= 1.05)\n",
      exact_total_ms, anneal_total_ms, calibration_ms, worst_mapped_vs_manual,
      worst_anneal_vs_exact);
  if (!report.write()) return 1;
  return 0;
}

// Ablation: instruction pinning ("(f)" in Table 4).
//
// When several processes share a tile, pinning keeps as many of their
// instruction footprints resident as the 512-word instruction memory
// allows; without it every activation re-streams the process's code
// through the ICAP at 50 ns/word.  This bench re-evaluates the Table-4
// manual mappings and a rebalancer sweep with pinning disabled.
#include <cstdio>

#include "apps/jpeg/process_table.hpp"
#include "common/table.hpp"
#include "mapping/rebalance.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;

  CostParams pinned{};
  CostParams unpinned{};
  unpinned.allow_pinning = false;
  obs::BenchReport report("ablation_pinning");

  std::printf("Ablation — instruction pinning (Table 4 mappings)\n\n");
  TextTable table({"impl", "tiles", "II pinned(us)", "II unpinned(us)",
                   "slowdown", "img/s pinned", "img/s unpinned"});
  for (const auto& m : jpeg::table4_manual_mappings()) {
    const auto with = mapping::evaluate(m.network, m.binding, pinned);
    const auto without = mapping::evaluate(m.network, m.binding, unpinned);
    table.add_row(
        {m.name, TextTable::integer(m.tiles),
         TextTable::num(with.ii_ns / 1000.0, 1),
         TextTable::num(without.ii_ns / 1000.0, 1),
         TextTable::num(without.ii_ns / with.ii_ns, 2) + "x",
         TextTable::num(with.items_per_sec / jpeg::kPaperImageBlocks, 2),
         TextTable::num(without.items_per_sec / jpeg::kPaperImageBlocks, 2)});
    report.add("pinning_slowdown", without.ii_ns / with.ii_ns, "x",
               {{"impl", m.name}});
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("table4_pinning", table);

  std::printf("Rebalancer sweep (reBalanceTwo) with and without pinning:\n\n");
  const auto net = jpeg::jpeg_main_pipeline();
  TextTable sweep({"tiles", "img/s pinned", "img/s unpinned", "ratio"});
  for (const int tiles : {1, 2, 4, 8, 16, 24}) {
    const auto b_with = mapping::rebalance(
        net, tiles, mapping::RebalanceAlgorithm::kTwo, pinned);
    const auto b_without = mapping::rebalance(
        net, tiles, mapping::RebalanceAlgorithm::kTwo, unpinned);
    const double with =
        mapping::evaluate(net, b_with, pinned).items_per_sec /
        jpeg::kPaperImageBlocks;
    const double without =
        mapping::evaluate(net, b_without, unpinned).items_per_sec /
        jpeg::kPaperImageBlocks;
    sweep.add_row({TextTable::integer(tiles), TextTable::num(with, 2),
                   TextTable::num(without, 2),
                   TextTable::num(with / without, 2) + "x"});
    report.add("sweep_ratio", with / without, "x",
               {{"tiles", std::to_string(tiles)}});
  }
  std::printf("%s\n", sweep.render().c_str());
  report.add_table("rebalance_sweep", sweep);
  if (!report.write()) return 1;
  std::printf(
      "Single-process tiles are immune (the code is simply resident), so\n"
      "the ablation bites exactly where the paper uses \"(f)\": dense\n"
      "multi-process tiles at small tile counts.\n");
  return 0;
}

// Regenerates Figures 16 and 17: JPEG encoder throughput (images/s) and
// average tile utilisation versus tile count (1..25) for the three
// rebalancing algorithms.
//
// Expected shape (paper Sec. 3.5.1): the three curves coincide almost
// everywhere — the heaviest tile usually hosts a single (DCT) process, so
// refinement has nothing to redistribute — and differ only in the 16-20
// tile region; utilisation saw-tooths downward as tiles are added.
#include <cmath>
#include <cstdio>

#include "apps/jpeg/process_table.hpp"
#include "common/table.hpp"
#include "dse/sweep.hpp"
#include "mapping/rebalance.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;
  using mapping::RebalanceAlgorithm;

  const auto net = jpeg::jpeg_main_pipeline();
  const CostParams params{};
  constexpr int kMaxTiles = 25;

  // The 25 tile budgets of each sweep are independent candidates; the pool
  // output is identical to the serial mapping::sweep.
  dse::Sweep sweep;
  const auto one =
      sweep.rebalance_sweep(net, kMaxTiles, RebalanceAlgorithm::kOne, params);
  const auto two =
      sweep.rebalance_sweep(net, kMaxTiles, RebalanceAlgorithm::kTwo, params);
  const auto opt =
      sweep.rebalance_sweep(net, kMaxTiles, RebalanceAlgorithm::kOpt, params);

  std::printf("Figure 16 — images/s vs number of tiles (200x200 image)\n\n");
  TextTable fig16({"tiles", "reBalanceOne", "reBalanceTwo", "reBalanceOPT"});
  for (int i = 0; i < kMaxTiles; ++i) {
    fig16.add_row(
        {TextTable::integer(i + 1),
         TextTable::num(one[i].eval.items_per_sec / jpeg::kPaperImageBlocks, 2),
         TextTable::num(two[i].eval.items_per_sec / jpeg::kPaperImageBlocks, 2),
         TextTable::num(opt[i].eval.items_per_sec / jpeg::kPaperImageBlocks,
                        2)});
  }
  std::printf("%s\n", fig16.render().c_str());

  std::printf("Figure 17 — average tile utilisation vs number of tiles\n\n");
  TextTable fig17({"tiles", "reBalanceOne", "reBalanceTwo", "reBalanceOPT"});
  for (int i = 0; i < kMaxTiles; ++i) {
    fig17.add_row({TextTable::integer(i + 1),
                   TextTable::num(one[i].eval.avg_utilization, 3),
                   TextTable::num(two[i].eval.avg_utilization, 3),
                   TextTable::num(opt[i].eval.avg_utilization, 3)});
  }
  std::printf("%s\n", fig17.render().c_str());

  obs::BenchReport report("fig16_17_rebalance_sweep");
  report.add_table("fig16_images_per_sec", fig16);
  report.add_table("fig17_utilization", fig17);

  int differing = 0;
  for (int i = 0; i < kMaxTiles; ++i) {
    const double a = one[i].eval.items_per_sec;
    const double b = two[i].eval.items_per_sec;
    const double c = opt[i].eval.items_per_sec;
    if (std::abs(a - b) > 1e-6 || std::abs(b - c) > 1e-6) ++differing;
  }
  std::printf(
      "The three algorithms differ at %d of %d tile counts (paper: only in\n"
      "the 16-20 tile region, where the heaviest tile hosts several\n"
      "processes and redistribution has room to work).\n",
      differing, kMaxTiles);
  report.add("differing_tile_counts", static_cast<double>(differing),
             "counts", {{"max_tiles", std::to_string(kMaxTiles)}});
  report.add("peak_images_per_sec",
             opt[kMaxTiles - 1].eval.items_per_sec / jpeg::kPaperImageBlocks,
             "img/s", {{"tiles", std::to_string(kMaxTiles)}});
  if (!report.write()) return 1;
  return 0;
}

// Reactor scale benchmark: one cgra::net::Server, hundreds to tens of
// thousands of concurrent pipelined loopback connections driven from a
// bench-local epoll client rig (no thread per connection on either
// side).  Two phases, same connection set:
//
//   * jobs — every connection pipelines identical-shape JPEG-block
//     requests (one batch key, so the service's cross-connection epoch
//     fusion engages), with a window of in-flight frames per
//     connection.  Every reply is matched against an in-process oracle
//     bit for bit, strictly in request order: a lost, duplicated or
//     reordered reply fails the run.  Job throughput is bounded by the
//     fabric simulation itself (one worker core executes the blocks),
//     so this phase bars on correctness and reports throughput.
//   * frontend — the same connections pipeline kPing frames, measuring
//     the serving front-end alone (framing, epoll readiness, reply
//     pump, sendmsg write coalescing) without the job executor in the
//     denominator.  This is the path the reactor rewrite optimises and
//     where the acceptance bar sits: >= 5x the committed
//     BENCH_net_throughput req/s baseline (3453 -> 17265) in the
//     default 64-connection configuration.
//
// Usage: bench_net_scale [connections] (default 64; CI runs 1000, a
// raised-ulimit host sustains 10000).  Frame counts per connection
// scale inversely so total work stays roughly constant.  At every size
// the p99 bars below are enforced — no advisory mode.  Writes
// BENCH_net_scale.json for the CI perf artifact.
#include <sys/epoll.h>
#include <sys/socket.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "cgra/net.hpp"
#include "net/protocol.hpp"
#include "net/socket_util.hpp"
#include "engine/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kSeeds = 64;          ///< Distinct JPEG blocks cycled through.
constexpr int kJobWindow = 8;       ///< In-flight job frames per connection.
constexpr int kPingWindow = 64;     ///< Ping window cap per connection.
/// Total in-flight pings across all connections: the per-connection
/// window shrinks as connections grow, so latency percentiles measure
/// serving capacity rather than self-inflicted queueing depth.
constexpr int kPingInflightTarget = 8192;
constexpr int kJobsTotalTarget = 6144;
constexpr int kPingsTotalTarget = 131072;
/// Acceptance: 5x the committed BENCH_net_throughput baseline
/// (3453.09 req/s), enforced on the front-end phase at 64 connections.
constexpr double kFiveXReqPerSec = 17265.0;
constexpr int kDefaultConnections = 64;
/// Front-end p99 bar (ms), enforced at EVERY size including the CI
/// 1000-connection run — no advisory mode.  Above 1000 connections the
/// bar scales linearly: in-flight depth cannot drop below one frame per
/// connection, so the queueing floor itself grows with the connection
/// count (10k connections on one core queue ~10k frames deep).
constexpr double kPingP99BarMs = 250.0;
constexpr double kPhaseDeadlineSec = 300.0;

cgra::jpeg::IntBlock block_for(int seed) {
  cgra::jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = ((seed + 3) * 29 + i * 17) % 256;
  }
  return raw;
}

cgra::service::JobRequest request_for(int seed) {
  cgra::service::JpegBlockRequest req;
  req.raw = block_for(seed);
  req.quant = cgra::jpeg::scaled_quant(75);  // one quant = one batch key
  return cgra::service::JobRequest{req};
}

/// One pipelined connection in the client rig.  All state is owned by
/// its driver thread; the rig uses edge-level epoll like the server.
struct Conn {
  int fd = -1;
  int index = 0;
  int sent = 0;
  int recvd = 0;
  int target = 0;
  std::vector<std::uint8_t> out;  ///< Encoded-but-unwritten request bytes.
  std::size_t out_off = 0;
  std::vector<std::uint8_t> in;   ///< Raw reply bytes awaiting framing.
  std::size_t in_off = 0;
  struct Sent {
    std::uint64_t id;
    int seed;
    Clock::time_point at;
  };
  std::deque<Sent> inflight;
  std::uint64_t next_seq = 0;
  bool want_write = false;
};

struct PhaseStats {
  double wall_ms = 0.0;
  double req_per_sec = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  long replies = 0;
  long bad = 0;  ///< Transport failures, mismatches, order violations.
};

double percentile(std::vector<double>* sorted, double p) {
  std::sort(sorted->begin(), sorted->end());
  if (sorted->empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// Patch the request id into a pre-encoded frame (header at 0, payload
/// begins with the little-endian u64 id) — avoids re-encoding a full
/// job payload per request.
void patch_request_id(std::vector<std::uint8_t>* frame, std::uint64_t id) {
  for (int i = 0; i < 8; ++i) {
    (*frame)[cgra::net::kHeaderSize + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(id >> (8 * i));
  }
}

/// Drive `conns` through one phase: keep each connection's window full,
/// verify replies in order, collect latencies.  Returns false on any
/// correctness failure (also recorded in stats->bad).
bool run_phase(bool jobs, std::vector<Conn>* conns,
               const std::vector<std::vector<std::uint8_t>>& templates,
               const std::vector<cgra::service::JobResult>& expected,
               int per_conn, int window, PhaseStats* stats) {
  using namespace cgra;
  using namespace cgra::net;
  const int epfd = ::epoll_create1(0);
  if (epfd < 0) return false;
  for (auto& c : *conns) {
    c.sent = 0;
    c.recvd = 0;
    c.target = per_conn;
    c.out.clear();
    c.out_off = 0;
    c.in.clear();
    c.in_off = 0;
    c.inflight.clear();
    c.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.ptr = &c;
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, c.fd, &ev) < 0) {
      ::close(epfd);
      return false;
    }
  }
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(per_conn) * conns->size());
  long done = 0;
  const long goal = static_cast<long>(per_conn) * static_cast<long>(
                                                      conns->size());
  const auto t0 = Clock::now();

  const auto fill_window = [&](Conn& c) {
    while (c.sent < c.target &&
           static_cast<int>(c.inflight.size()) < window) {
      const int seed = (c.index + c.sent) % kSeeds;
      // Unique per-connection id; replies must come back in this order.
      const std::uint64_t id =
          (static_cast<std::uint64_t>(c.index) << 32) |
          static_cast<std::uint64_t>(++c.next_seq);
      std::vector<std::uint8_t> frame =
          jobs ? templates[static_cast<std::size_t>(seed)]
               : encode_ping(id);
      if (jobs) patch_request_id(&frame, id);
      c.out.insert(c.out.end(), frame.begin(), frame.end());
      c.inflight.push_back({id, seed, Clock::now()});
      ++c.sent;
    }
  };
  const auto flush_out = [&](Conn& c) -> bool {
    while (c.out_off < c.out.size()) {
      const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                               c.out.size() - c.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (!c.want_write) {
            c.want_write = true;
            epoll_event ev{};
            ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
            ev.data.ptr = &c;
            (void)::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
          }
          return true;
        }
        return false;
      }
      c.out_off += static_cast<std::size_t>(n);
    }
    c.out.clear();
    c.out_off = 0;
    if (c.want_write) {
      c.want_write = false;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.ptr = &c;
      (void)::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
    }
    return true;
  };
  const auto drain_in = [&](Conn& c) -> bool {
    for (;;) {
      // Parse every complete frame buffered so far.
      for (;;) {
        const std::size_t avail = c.in.size() - c.in_off;
        if (avail < kHeaderSize) break;
        FrameHeader hdr;
        if (!decode_header(std::span<const std::uint8_t>(
                               c.in.data() + c.in_off, kHeaderSize),
                           &hdr)
                 .ok()) {
          return false;
        }
        if (avail < kHeaderSize + hdr.payload_len) break;
        Frame frame;
        frame.header = hdr;
        const auto* body = c.in.data() + c.in_off + kHeaderSize;
        frame.payload.assign(body, body + hdr.payload_len);
        c.in_off += kHeaderSize + hdr.payload_len;
        Response resp;
        if (!decode_response(frame, &resp).ok()) return false;
        if (c.inflight.empty() || resp.request_id != c.inflight.front().id) {
          return false;  // lost, duplicated or reordered reply
        }
        const Conn::Sent sent = c.inflight.front();
        c.inflight.pop_front();
        latencies.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent.at)
                .count());
        if (jobs) {
          if (resp.type != MsgType::kJpegBlockResult || !resp.result.ok()) {
            return false;
          }
          const auto& got =
              std::get<service::JpegBlockJobResult>(resp.result.payload);
          const auto& want = std::get<service::JpegBlockJobResult>(
              expected[static_cast<std::size_t>(sent.seed)].payload);
          if (got.zigzagged != want.zigzagged) return false;
        } else if (resp.type != MsgType::kPong) {
          return false;
        }
        ++c.recvd;
        ++done;
      }
      if (c.in_off == c.in.size()) {
        c.in.clear();
        c.in_off = 0;
      } else if (c.in_off >= 64 * 1024) {
        c.in.erase(c.in.begin(),
                   c.in.begin() + static_cast<std::ptrdiff_t>(c.in_off));
        c.in_off = 0;
      }
      const std::size_t old = c.in.size();
      c.in.resize(old + 64 * 1024);
      const ssize_t n = ::recv(c.fd, c.in.data() + old, 64 * 1024, 0);
      if (n > 0) {
        c.in.resize(old + static_cast<std::size_t>(n));
        continue;
      }
      c.in.resize(old);
      if (n == 0) return c.recvd == c.target;  // server-side close
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  };

  // Prime every window before the clock-relevant loop services replies.
  bool ok = true;
  for (auto& c : *conns) {
    fill_window(c);
    if (!flush_out(c)) {
      ok = false;
      ++stats->bad;
    }
  }
  epoll_event events[256];
  const auto deadline =
      t0 + std::chrono::duration<double>(kPhaseDeadlineSec);
  while (ok && done < goal) {
    if (Clock::now() > deadline) {
      std::printf("phase deadline exceeded (%ld/%ld replies)\n", done, goal);
      ok = false;
      break;
    }
    const int n = ::epoll_wait(epfd, events,
                               static_cast<int>(std::size(events)), 100);
    for (int i = 0; i < n; ++i) {
      auto& c = *static_cast<Conn*>(events[i].data.ptr);
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        if (!drain_in(c)) {
          ok = false;
          ++stats->bad;
          continue;
        }
      }
      fill_window(c);
      if (!flush_out(c)) {
        ok = false;
        ++stats->bad;
        continue;
      }
    }
  }
  stats->wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  stats->replies = done;
  stats->req_per_sec = stats->wall_ms > 0.0
                           ? 1000.0 * static_cast<double>(done) /
                                 stats->wall_ms
                           : 0.0;
  stats->p50 = percentile(&latencies, 0.50);
  stats->p90 = percentile(&latencies, 0.90);
  stats->p99 = percentile(&latencies, 0.99);
  for (auto& c : *conns) {
    (void)::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  }
  ::close(epfd);
  return ok && done == goal;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const int connections =
      argc > 1 ? std::atoi(argv[1]) : kDefaultConnections;
  if (connections < 1 || connections > 65536) {
    std::printf("bad connection count\n");
    return 1;
  }
  const int jobs_per_conn = std::max(2, kJobsTotalTarget / connections);
  const int pings_per_conn = std::max(8, kPingsTotalTarget / connections);
  const int job_window = std::min(kJobWindow, jobs_per_conn);
  const int ping_window =
      std::clamp(kPingInflightTarget / connections, 4, kPingWindow);

  std::printf(
      "Reactor scale — %d pipelined connections "
      "(%d jobs + %d pings per connection)\n\n",
      connections, jobs_per_conn, pings_per_conn);

  service::ServiceOptions sopt;
  sopt.workers = 1;
  // Every window can be full at once; admission here is the bench's own
  // windowing, saturation replies would be a correctness failure.
  sopt.queue_capacity = connections * job_window + 256;
  sopt.batch_limit = 32;
  sopt.fusion_window_us = 100;  // cross-connection epoch fusion
  service::Service svc(sopt);
  net::ServerOptions nopt;
  nopt.max_connections = connections + 8;
  nopt.max_inflight_per_connection = std::max(kJobWindow, kPingWindow);
  net::Server server(&svc, nopt);
  if (const auto s = server.start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.message().c_str());
    return 1;
  }

  // In-process oracle (and cache/pool warm-up): the wire replies must be
  // bit-identical to these.
  std::vector<std::vector<std::uint8_t>> templates;
  std::vector<service::JobResult> expected;
  for (int seed = 0; seed < kSeeds; ++seed) {
    expected.push_back(svc.wait(svc.submit(request_for(seed)).handle));
    if (!expected.back().ok()) {
      std::printf("oracle job %d failed: %s\n", seed,
                  expected.back().status.message().c_str());
      return 1;
    }
    std::vector<std::uint8_t> frame;
    if (!net::encode_job_request(0, request_for(seed), &frame).ok()) {
      return 1;
    }
    templates.push_back(std::move(frame));
  }

  std::vector<Conn> conns(static_cast<std::size_t>(connections));
  for (int i = 0; i < connections; ++i) {
    auto& c = conns[static_cast<std::size_t>(i)];
    c.index = i;
    c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (c.fd < 0 ||
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        !net::set_nonblocking(c.fd).ok()) {
      std::printf("connect %d/%d failed: %s (raise ulimit -n?)\n", i + 1,
                  connections, std::strerror(errno));
      return 1;
    }
    (void)net::set_nodelay(c.fd);
  }

  PhaseStats jobs;
  const bool jobs_ok = run_phase(/*jobs=*/true, &conns, templates, expected,
                                 jobs_per_conn, job_window, &jobs);
  PhaseStats pings;
  const bool pings_ok = run_phase(/*jobs=*/false, &conns, templates,
                                  expected, pings_per_conn, ping_window,
                                  &pings);
  for (auto& c : conns) ::close(c.fd);
  server.stop();

  TextTable table({"phase", "replies", "wall ms", "req/s", "p50 ms",
                   "p90 ms", "p99 ms"});
  table.add_row({"jobs (verified)", TextTable::integer(jobs.replies),
                 TextTable::num(jobs.wall_ms, 1),
                 TextTable::num(jobs.req_per_sec, 0),
                 TextTable::num(jobs.p50, 2), TextTable::num(jobs.p90, 2),
                 TextTable::num(jobs.p99, 2)});
  table.add_row({"frontend (ping)", TextTable::integer(pings.replies),
                 TextTable::num(pings.wall_ms, 1),
                 TextTable::num(pings.req_per_sec, 0),
                 TextTable::num(pings.p50, 2), TextTable::num(pings.p90, 2),
                 TextTable::num(pings.p99, 2)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "job replies bit-identical, in order, none lost or duplicated: %s\n",
      jobs_ok ? "yes" : "NO");
  std::printf("cross-connection fusion gains: %lld fused arrivals\n",
              static_cast<long long>(
                  svc.counter("service.fusion.window_gains")));

  obs::BenchReport report("net_scale");
  report.add("connections", connections, "count");
  report.add("job_req_per_sec", jobs.req_per_sec, "req/s");
  report.add("job_p50_ms", jobs.p50, "ms");
  report.add("job_p90_ms", jobs.p90, "ms");
  report.add("job_p99_ms", jobs.p99, "ms");
  report.add("frontend_req_per_sec", pings.req_per_sec, "req/s");
  report.add("frontend_p50_ms", pings.p50, "ms");
  report.add("frontend_p90_ms", pings.p90, "ms");
  report.add("frontend_p99_ms", pings.p99, "ms");
  report.add_table("net_scale", table);
  if (!report.write()) return 1;

  if (!jobs_ok || !pings_ok || jobs.bad > 0 || pings.bad > 0) {
    std::printf("FAIL: correctness violation (%ld bad)\n",
                jobs.bad + pings.bad);
    return 1;
  }
  if (connections == kDefaultConnections &&
      pings.req_per_sec < kFiveXReqPerSec) {
    std::printf("FAIL: frontend %.0f req/s below the 5x bar (%.0f)\n",
                pings.req_per_sec, kFiveXReqPerSec);
    return 1;
  }
  const double p99_bar =
      kPingP99BarMs * std::max(1.0, connections / 1000.0);
  if (pings.p99 > p99_bar) {
    std::printf("FAIL: frontend p99 %.1f ms beyond the %.0f ms bar\n",
                pings.p99, p99_bar);
    return 1;
  }
  return 0;
}

// Regenerates Table 1: 1024-point radix-2 FFT process runtimes.
//
// Each BF stage kernel (and the vcp/hcp copy processes) runs standalone on
// the cycle simulator; the measured runtime sits next to the paper's
// published number.  Absolute values differ (our ISA retires a butterfly in
// a different number of cycles than reMORPH's), but the shape holds: early
// pair-kernel stages share one runtime, deeper stages pay growing loop
// overhead, and hcp ~ 2x vcp.
#include <cstdio>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/programs.hpp"
#include "common/table.hpp"
#include "common/timing.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  const auto g = fft::make_geometry(1024);
  obs::BenchReport report("table1_fft_processes");

  std::printf("Table 1 — 1024-point Radix2 FFT processes (N=%d, M=%d)\n\n",
              g.n, g.m);

  const double paper_bf_ns[10] = {2672, 2672, 2672, 4112, 3434,
                                  3134, 3062, 3182, 3554, 4364};
  const isa::Program bf_prog =
      fft::must_assemble(fft::bf_pair_source(fft::make_layout(g.m)));

  TextTable table({"process", "paper runtime(ns)", "measured runtime(ns)",
                   "twiddles", "insts", "dmem words"});
  for (int s = 0; s < g.stages; ++s) {
    const auto cycles = fft::measure_bf_cycles(g, s);
    const int dmem = 3 * g.m + 41;  // paper's 3M+41 budget
    table.add_row({"BF" + std::to_string(s),
                   TextTable::num(paper_bf_ns[s], 0),
                   TextTable::num(cycles_to_ns(cycles), 0),
                   TextTable::integer(g.twiddles_for_stage(s)),
                   TextTable::integer(bf_prog.inst_words()),
                   TextTable::integer(dmem)});
    report.add("bf_runtime", cycles_to_ns(cycles), "ns",
               {{"stage", std::to_string(s)}});
  }
  {
    const auto vcp = fft::measure_copy_cycles(g.m, g.m / 2);
    const auto hcp = fft::measure_copy_cycles(g.m, g.m);
    table.add_row({"vcp", "789", TextTable::num(cycles_to_ns(vcp), 0), "0",
                   "9", "11"});
    table.add_row({"hcp", "1557", TextTable::num(cycles_to_ns(hcp), 0), "0",
                   "9", "11"});
    report.add("vcp_runtime", cycles_to_ns(vcp), "ns");
    report.add("hcp_runtime", cycles_to_ns(hcp), "ns");
  }
  std::printf("%s\n", table.render().c_str());
  report.add_table("table1", table);
  if (!report.write()) return 1;
  std::printf(
      "Notes: measured values come from executing the generated kernels on\n"
      "the cycle-accurate simulator at 2.5 ns/instruction.  The early stages\n"
      "(BF0..BF%d) use the constant-geometry pair kernel and therefore share\n"
      "one runtime; deeper stages use the stride kernel whose group overhead\n"
      "grows, reproducing the paper's upward trend.\n",
      g.cross_stages() - 1);
  return 0;
}

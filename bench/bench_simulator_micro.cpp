// Microbenchmarks of the simulator itself: tile step rate, assembler
// throughput, end-to-end fabric FFT simulation speed, JPEG block pipeline.
// These quantify the cost of the methodology (how many simulated cycles
// per host second) rather than any paper result.
#include <benchmark/benchmark.h>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/programs.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "bench_json_reporter.hpp"
#include "common/prng.hpp"
#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"
#include "obs/metrics.hpp"

namespace {

void BM_TileStepRate(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(1, 1);
  fab.tile(0).load_program(fft::must_assemble(fft::bf_pair_source(lay)));
  std::int64_t cycles = 0;
  for (auto _ : state) {
    fab.tile(0).restart();
    const auto run = fab.run(1'000'000);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileStepRate);

void BM_FabricStepRate64Tiles(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(8, 8);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(prog);
  }
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStepRate64Tiles);

// The observability overhead check: the same 64-tile hot loop with the
// metrics registry attached (arg 1) vs detached (arg 0).  The attached
// variant must stay within ~5% of the detached one; building with
// -DCGRA_OBS_OFF=ON compiles the counter bumps out entirely.
void BM_FabricStepRateMetrics(benchmark::State& state) {
  using namespace cgra;
  const bool attached = state.range(0) != 0;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(8, 8);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(prog);
  }
  obs::MetricsRegistry metrics;
  if (attached) fab.attach_metrics(&metrics);
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStepRateMetrics)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("metrics");

void BM_Assembler(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  const std::string src = fft::bf_local_source(lay, 16);
  for (auto _ : state) {
    auto result = isa::assemble(src);
    benchmark::DoNotOptimize(result.program.code.data());
  }
}
BENCHMARK(BM_Assembler);

void BM_FabricFftEndToEnd(benchmark::State& state) {
  using namespace cgra;
  const int n = static_cast<int>(state.range(0));
  const auto g = fft::make_geometry(n, std::min(n, 16));
  SplitMix64 rng(7);
  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
  for (auto _ : state) {
    auto result = fft::run_fabric_fft(g, x);
    if (!result.ok) state.SkipWithError("fabric FFT failed");
    benchmark::DoNotOptimize(result.output.data());
  }
}
BENCHMARK(BM_FabricFftEndToEnd)->Arg(16)->Arg(64)->Arg(128);

void BM_JpegBlockOnFabric(benchmark::State& state) {
  using namespace cgra;
  const auto quant = jpeg::scaled_quant(50);
  jpeg::IntBlock raw{};
  SplitMix64 rng(9);
  for (auto& v : raw) v = static_cast<int>(rng.next_below(256));
  for (auto _ : state) {
    auto result = jpeg::encode_block_on_fabric(raw, quant);
    if (!result.ok) state.SkipWithError("fabric block failed");
    benchmark::DoNotOptimize(result.zigzagged.data());
  }
}
BENCHMARK(BM_JpegBlockOnFabric);

}  // namespace

int main(int argc, char** argv) {
  return cgra::benchjson::run_and_report(argc, argv, "simulator_micro");
}

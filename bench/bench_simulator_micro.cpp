// Microbenchmarks of the simulator itself: tile step rate, assembler
// throughput, end-to-end fabric FFT simulation speed, JPEG block pipeline.
// These quantify the cost of the methodology (how many simulated cycles
// per host second) rather than any paper result.
#include <benchmark/benchmark.h>

#include <vector>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/programs.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "bench_json_reporter.hpp"
#include "common/prng.hpp"
#include "engine/engine.hpp"
#include "fabric/fabric.hpp"
#include "isa/assembler.hpp"
#include "obs/metrics.hpp"

namespace {

void BM_TileStepRate(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(1, 1);
  fab.tile(0).load_program(fft::must_assemble(fft::bf_pair_source(lay)));
  std::int64_t cycles = 0;
  for (auto _ : state) {
    fab.tile(0).restart();
    const auto run = fab.run(1'000'000);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileStepRate);

void BM_FabricStepRate64Tiles(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(8, 8);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(prog);
  }
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStepRate64Tiles);

// The observability overhead check: the same 64-tile hot loop with the
// metrics registry attached (arg 1) vs detached (arg 0).  The attached
// variant must stay within ~5% of the detached one; building with
// -DCGRA_OBS_OFF=ON compiles the counter bumps out entirely.
void BM_FabricStepRateMetrics(benchmark::State& state) {
  using namespace cgra;
  const bool attached = state.range(0) != 0;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(8, 8);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(prog);
  }
  obs::MetricsRegistry metrics;
  if (attached) fab.attach_metrics(&metrics);
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStepRateMetrics)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("metrics");

// The same dense mesh with the threaded superinstruction engine pinned
// (independent of --engine), so a single run carries the interpreter /
// threaded side-by-side for the per-block specialization win.
void BM_FabricStepRate64TilesThreaded(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  fabric::Fabric fab(8, 8);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(prog);
  }
  fab.adopt_engine(engine::make_engine(
      engine::EngineOptions{engine::EngineKind::kThreaded}));
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStepRate64TilesThreaded);

/// A self-contained countdown loop of ~2*n + 3 cycles.
std::string countdown_source(int n) {
  return "  movi 0, #" + std::to_string(n) +
         "\nloop:\n  sub 0, 0, #1\n  bnez 0, loop\n  halt\n";
}

// Lockstep batch stepping: `width` copies of the dense 64-tile mesh
// advance together through BatchEngine::run_batch, so the aggregate
// tile_cycles/s is what one host thread simulates across all instances.
// CI gates this against BM_FabricStepRate64Tiles from the SAME run
// (scripts/check_batch_gate.py): the SoA lane loop must clear 5x the
// sequential interpreter on the dense mesh.
void BM_FabricBatchStepRate64Tiles(benchmark::State& state) {
  using namespace cgra;
  const int width = static_cast<int>(state.range(0));
  const auto lay = fft::make_layout(128);
  const auto prog = fft::must_assemble(fft::bf_pair_source(lay));
  std::vector<fabric::Fabric> mesh;
  mesh.reserve(static_cast<std::size_t>(width));  // ptrs point into mesh
  std::vector<fabric::Fabric*> ptrs;
  for (int i = 0; i < width; ++i) {
    auto& fab = mesh.emplace_back(8, 8);
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).load_program(prog);
    ptrs.push_back(&fab);
  }
  engine::BatchEngine batch(width);
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (auto& fab : mesh) {
      for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    }
    const auto runs = batch.run_batch(ptrs, 1'000'000);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      tile_cycles += runs[i].cycles * mesh[i].tile_count();
    }
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricBatchStepRate64Tiles)->Arg(8)->Arg(16)->ArgName("width");

// The batch gate pair: the same dense 64-tile mesh running a long
// countdown (~100k cycles per run), interpreter vs 16-wide batch.  The
// long run amortizes the batch engine's SoA extraction/write-back, so
// this isolates steady-state stepping throughput — the number the >5x
// acceptance gate is about.  scripts/check_batch_gate.py reads both
// counters out of BENCH_simulator_micro.json.
void BM_FabricDenseLoop64Tiles(benchmark::State& state) {
  using namespace cgra;
  fabric::Fabric fab(8, 8);
  auto r = isa::assemble(countdown_source(50'000));
  if (!r.ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(r.program);
  }
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    const auto run = fab.run(1'000'000);
    tile_cycles += run.cycles * fab.tile_count();
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricDenseLoop64Tiles);

void BM_FabricBatchDenseLoop64Tiles(benchmark::State& state) {
  using namespace cgra;
  const int width = static_cast<int>(state.range(0));
  auto r = isa::assemble(countdown_source(50'000));
  if (!r.ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  std::vector<fabric::Fabric> mesh;
  mesh.reserve(static_cast<std::size_t>(width));  // ptrs point into mesh
  std::vector<fabric::Fabric*> ptrs;
  for (int i = 0; i < width; ++i) {
    auto& fab = mesh.emplace_back(8, 8);
    for (int t = 0; t < fab.tile_count(); ++t) {
      fab.tile(t).load_program(r.program);
    }
    ptrs.push_back(&fab);
  }
  engine::BatchEngine batch(width);
  std::int64_t tile_cycles = 0;
  for (auto _ : state) {
    for (auto& fab : mesh) {
      for (int t = 0; t < fab.tile_count(); ++t) fab.tile(t).restart();
    }
    const auto runs = batch.run_batch(ptrs, 1'000'000);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      tile_cycles += runs[i].cycles * mesh[i].tile_count();
    }
  }
  state.counters["tile_cycles/s"] = benchmark::Counter(
      static_cast<double>(tile_cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricBatchDenseLoop64Tiles)->Arg(16)->ArgName("width");

// --- engine scenario benches -----------------------------------------------
// Three scenarios isolate the two fast-path mechanisms: the active-tile
// scheduler (halted-heavy, stalled-heavy) and the predecoded dispatch
// (branch-heavy).  The dense all-tiles-active case is BM_FabricStepRate64Tiles
// above.  Each emits its own sim_cycles/s counter into
// BENCH_simulator_micro.json.

// 64-tile fabric, one tile running, 63 halted: the per-cycle cost of the
// halted majority is what the active list eliminates.
void BM_FabricHaltedHeavy(benchmark::State& state) {
  using namespace cgra;
  fabric::Fabric fab(8, 8);
  auto r = isa::assemble(countdown_source(50'000));
  if (!r.ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  fab.tile(0).load_program(r.program);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    fab.tile(0).restart();
    const auto run = fab.run(1'000'000);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricHaltedHeavy);

// 64-tile fabric, every tile stalled for a long reconfiguration window:
// the wake queue lets run() fast-forward instead of walking all tiles
// through every stalled cycle.
void BM_FabricStalledHeavy(benchmark::State& state) {
  using namespace cgra;
  fabric::Fabric fab(8, 8);
  auto r = isa::assemble(countdown_source(4));
  if (!r.ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  for (int t = 0; t < fab.tile_count(); ++t) {
    fab.tile(t).load_program(r.program);
  }
  std::int64_t cycles = 0;
  for (auto _ : state) {
    for (int t = 0; t < fab.tile_count(); ++t) {
      fab.tile(t).restart();
      fab.tile(t).stall_until(fab.now() + 100'000);
    }
    const auto run = fab.run(1'000'000);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FabricStalledHeavy);

// Single tile in a tight branchy loop (sub/bnez/jmp): isolates instruction
// dispatch, which predecoding turns from flag/bit tests into plain loads.
void BM_TileBranchHeavy(benchmark::State& state) {
  using namespace cgra;
  fabric::Fabric fab(1, 1);
  auto r = isa::assemble(
      "  movi 0, #25000\n"
      "outer:\n"
      "  sub 0, 0, #1\n"
      "  beqz 0, done\n"
      "  jmp outer\n"
      "done:\n  halt\n");
  if (!r.ok()) {
    state.SkipWithError("assembly failed");
    return;
  }
  fab.tile(0).load_program(r.program);
  std::int64_t cycles = 0;
  for (auto _ : state) {
    fab.tile(0).restart();
    const auto run = fab.run(1'000'000);
    cycles += run.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TileBranchHeavy);

void BM_Assembler(benchmark::State& state) {
  using namespace cgra;
  const auto lay = fft::make_layout(128);
  const std::string src = fft::bf_local_source(lay, 16);
  for (auto _ : state) {
    auto result = isa::assemble(src);
    benchmark::DoNotOptimize(result.program.code.data());
  }
}
BENCHMARK(BM_Assembler);

void BM_FabricFftEndToEnd(benchmark::State& state) {
  using namespace cgra;
  const int n = static_cast<int>(state.range(0));
  const auto g = fft::make_geometry(n, std::min(n, 16));
  SplitMix64 rng(7);
  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
  for (auto _ : state) {
    auto result = fft::run_fabric_fft(g, x);
    if (!result.ok()) state.SkipWithError("fabric FFT failed");
    benchmark::DoNotOptimize(result.output.data());
  }
}
BENCHMARK(BM_FabricFftEndToEnd)->Arg(16)->Arg(64)->Arg(128);

void BM_JpegBlockOnFabric(benchmark::State& state) {
  using namespace cgra;
  const auto quant = jpeg::scaled_quant(50);
  jpeg::IntBlock raw{};
  SplitMix64 rng(9);
  for (auto& v : raw) v = static_cast<int>(rng.next_below(256));
  for (auto _ : state) {
    auto result = jpeg::encode_block_on_fabric(raw, quant);
    if (!result.ok()) state.SkipWithError("fabric block failed");
    benchmark::DoNotOptimize(result.zigzagged.data());
  }
}
BENCHMARK(BM_JpegBlockOnFabric);

}  // namespace

int main(int argc, char** argv) {
  return cgra::benchjson::run_and_report(argc, argv, "simulator_micro");
}

// Regenerates Table 5: reBalanceOne binding of the JPEG encoder to a
// 24-tile circuit.  The paper's result: p1 (DCT) receives 17 tiles, p5
// (hman1) two, everything else shares the remaining five.
#include <cstdio>

#include "apps/jpeg/process_table.hpp"
#include "common/table.hpp"
#include "dse/sweep.hpp"
#include "mapping/rebalance.hpp"
#include "obs/bench_report.hpp"
#include "engine/cli.hpp"

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  using namespace cgra;
  using mapping::CostParams;
  using mapping::RebalanceAlgorithm;

  const auto net = jpeg::jpeg_main_pipeline();

  std::printf("Table 5 — binding JPEG processes to 24 tiles "
              "(reBalanceOne)\n\n");
  std::printf("Paper: T1:p0  T2:p1(17)  T3:p2-4  T4:p5(2)  T5:p6  T6:p7-8  "
              "T7:p9\n\n");

  // Evaluate the three rebalancers concurrently; reporting below stays in
  // algorithm order because map() returns results by candidate index.
  const RebalanceAlgorithm algos[] = {RebalanceAlgorithm::kOne,
                                      RebalanceAlgorithm::kTwo,
                                      RebalanceAlgorithm::kOpt};
  struct AlgoResult {
    mapping::Binding binding;
    mapping::BindingEval eval;
  };
  dse::Sweep sweep;
  const auto results = sweep.map<AlgoResult>(3, [&](int i) {
    AlgoResult r;
    r.binding = mapping::rebalance(net, 24, algos[i], CostParams{});
    r.eval = mapping::evaluate(net, r.binding, CostParams{});
    return r;
  });

  obs::BenchReport report("table5_rebalance24");
  for (std::size_t a = 0; a < 3; ++a) {
    const auto algo = algos[a];
    const auto& binding = results[a].binding;
    const auto& eval = results[a].eval;
    std::printf("%s (%d tiles):\n", mapping::rebalance_name(algo),
                binding.tile_count());

    TextTable table({"tile group", "processes", "replicas", "busy(us)",
                     "effective(us)"});
    for (std::size_t i = 0; i < binding.groups.size(); ++i) {
      const auto& g = binding.groups[i];
      std::string procs;
      for (const int p : g.procs) {
        if (!procs.empty()) procs += " ";
        procs += net.process(p).name;
      }
      const double busy = eval.groups[i].busy_ns() / 1000.0;
      table.add_row({"T" + std::to_string(i + 1), procs,
                     TextTable::integer(g.replication),
                     TextTable::num(busy, 1),
                     TextTable::num(busy / g.replication, 1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("  II = %.1f us, %.2f images/s, avg util %.2f\n\n",
                eval.ii_ns / 1000.0,
                eval.items_per_sec / jpeg::kPaperImageBlocks,
                eval.avg_utilization);
    report.add_table(mapping::rebalance_name(algo), table);
    report.add("images_per_sec",
               eval.items_per_sec / jpeg::kPaperImageBlocks, "img/s",
               {{"algorithm", mapping::rebalance_name(algo)}});
  }
  if (!report.write()) return 1;
  return 0;
}

// Design-space explorer: the paper's methodology as a command-line tool.
// For an N-point FFT it measures kernel times on the simulator, sweeps
// column counts x link costs, and prints the Pareto view (best design per
// link cost plus the crossover points).
//
//   ./build/examples/dse_explorer [N] [M] [maxL]   (defaults: 1024 128 2000)
#include <cstdio>
#include <cstdlib>

#include "cgra/apps.hpp"

int main(int argc, char** argv) {
  using namespace cgra;
  const int n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int m = argc > 2 ? std::atoi(argv[2]) : 128;
  const int max_link = argc > 3 ? std::atoi(argv[3]) : 2000;

  fft::FftGeometry g;
  try {
    g = fft::make_geometry(n, m);
  } catch (const std::exception& e) {
    std::printf("bad geometry: %s\n", e.what());
    return 1;
  }

  std::printf("Design space for the %d-point FFT on M=%d tiles\n", g.n, g.m);
  std::printf("Rows per column: %d; usable column counts:", g.rows);
  const auto cols_opts = dse::usable_column_counts(g);
  for (const int c : cols_opts) std::printf(" %d", c);
  std::printf("\nMeasuring kernels on the simulator...\n\n");
  const auto times = dse::measure_process_times(g);

  TextTable kernels({"process", "runtime(ns)"});
  for (std::size_t s = 0; s < times.bf.size(); ++s) {
    kernels.add_row({"BF" + std::to_string(s), TextTable::num(times.bf[s], 0)});
  }
  kernels.add_row({"vcp", TextTable::num(times.vcp, 0)});
  kernels.add_row({"hcp", TextTable::num(times.hcp, 0)});
  std::printf("%s\n", kernels.render().c_str());

  std::printf("Throughput (transforms/s) by design point:\n\n");
  std::vector<std::string> header = {"L(ns)"};
  for (const int c : cols_opts) {
    header.push_back(std::to_string(c) + "c/" + std::to_string(c * g.rows) +
                     "t");
  }
  header.push_back("best");
  TextTable table(header);
  for (int link = 0; link <= max_link; link += max_link / 10) {
    std::vector<std::string> row = {TextTable::integer(link)};
    int best_cols = 0;
    double best = -1.0;
    for (const int c : cols_opts) {
      const double t =
          dse::evaluate_fft_design(g, times, c, link).throughput_per_sec();
      row.push_back(TextTable::num(t, 0));
      if (t > best) {
        best = t;
        best_cols = c;
      }
    }
    row.push_back(std::to_string(best_cols) + " cols");
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  // Cost breakdown of the widest design at the middle link cost.
  const int wide = cols_opts.back();
  const auto bd = dse::evaluate_fft_design(g, times, wide, max_link / 2);
  std::printf("tau breakdown for %d columns at L=%d ns:\n", wide,
              max_link / 2);
  static const char* kTauNames[8] = {
      "tau0 receive input",  "tau1 twiddle reload",  "tau2 BF pipeline",
      "tau3 vcp var reload", "tau4 vcp execution",   "tau5 horizontal links",
      "tau6 hcp reconfig",   "tau7 send results"};
  for (int i = 0; i < 8; ++i) {
    std::printf("  %-22s %10.1f ns\n", kTauNames[i], bd.tau[i]);
  }
  std::printf("  %-22s %10.1f ns  (%.0f transforms/s)\n", "total",
              bd.total_ns(), bd.throughput_per_sec());
  return 0;
}

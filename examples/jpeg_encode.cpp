// JPEG encoder example: encodes a synthetic image to a real .jpg file.
// Every 8x8 block's transform path (shift -> DCT -> quantize -> zigzag)
// executes on the cycle-level fabric pipeline; the entropy stage runs on
// the host (the documented substitution).  The stream is then decoded with
// the bundled decoder to report PSNR.
//
//   ./build/examples/jpeg_encode [width] [height] [quality] [out.jpg]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/jpeg/color.hpp"
#include "apps/jpeg/decoder.hpp"
#include "apps/jpeg/fabric_jpeg.hpp"
#include "apps/jpeg/process_table.hpp"
#include "mapping/rebalance.hpp"

int main(int argc, char** argv) {
  using namespace cgra;
  const int width = argc > 1 ? std::atoi(argv[1]) : 64;
  const int height = argc > 2 ? std::atoi(argv[2]) : 48;
  const int quality = argc > 3 ? std::atoi(argv[3]) : 75;
  const char* path = argc > 4 ? argv[4] : "out.jpg";

  const auto img = jpeg::synthetic_image(width, height, 2026);
  const auto quant = jpeg::scaled_quant(quality);

  // Sanity-check a few blocks on the fabric pipeline: the tile kernels
  // must agree with the host stages bit for bit.
  std::int64_t fabric_cycles = 0;
  int checked = 0;
  for (int by = 0; by < (height + 7) / 8 && checked < 4; ++by) {
    for (int bx = 0; bx < (width + 7) / 8 && checked < 4; ++bx, ++checked) {
      const auto raw = jpeg::extract_block(img, bx, by);
      const auto fab = jpeg::encode_block_on_fabric(raw, quant);
      if (!fab.ok || fab.zigzagged != jpeg::encode_block_stages(raw, quant)) {
        std::printf("fabric/host mismatch at block (%d,%d)!\n", bx, by);
        return 1;
      }
      fabric_cycles += fab.total_cycles;
    }
  }
  std::printf("Verified %d blocks on the 1x4 fabric pipeline "
              "(%lld cycles, %.1f us at 400 MHz)\n",
              checked, static_cast<long long>(fabric_cycles),
              cycles_to_ns(fabric_cycles) / 1000.0);

  const auto bytes = jpeg::encode_image(img, quality);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  std::printf("Wrote %zu bytes to %s (%dx%d, quality %d)\n", bytes.size(),
              path, width, height, quality);

  const auto decoded = jpeg::decode_image(bytes);
  if (!decoded.ok) {
    std::printf("decode failed: %s\n", decoded.error.c_str());
    return 1;
  }
  std::printf("Round-trip PSNR: %.1f dB\n", jpeg::psnr(img, decoded.image));

  // Color variant (4:4:4 YCbCr) alongside the grayscale stream.
  {
    const auto rgb = jpeg::synthetic_rgb_image(width, height, 2027);
    const auto color_bytes = jpeg::encode_color_image(rgb, quality);
    const std::string color_path = std::string(path) + ".color.jpg";
    std::ofstream cout_file(color_path, std::ios::binary);
    cout_file.write(reinterpret_cast<const char*>(color_bytes.data()),
                    static_cast<std::streamsize>(color_bytes.size()));
    const auto color_decoded = jpeg::decode_image(color_bytes);
    if (color_decoded.ok && color_decoded.is_color) {
      std::printf("Wrote %zu bytes to %s (color PSNR %.1f dB)\n",
                  color_bytes.size(), color_path.c_str(),
                  jpeg::psnr_rgb(rgb, color_decoded.rgb));
    }
  }

  // What the mapping machinery says about this workload.
  const auto net = jpeg::jpeg_split_pipeline();
  const auto binding =
      mapping::rebalance(net, 8, mapping::RebalanceAlgorithm::kTwo,
                         mapping::CostParams{});
  const auto eval = mapping::evaluate(net, binding, mapping::CostParams{});
  const int blocks = jpeg::block_count(width, height);
  std::printf(
      "\nOn an 8-tile fabric (reBalanceTwo): %s\n"
      "II = %.1f us/block -> %.1f ms per %dx%d image, util %.2f\n",
      binding.describe(net).c_str(), eval.ii_ns / 1000.0,
      eval.time_for_items(blocks) / 1e6, width, height,
      eval.avg_utilization);
  return 0;
}

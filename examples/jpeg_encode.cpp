// JPEG encoder example: encodes a synthetic image to a real .jpg file.
// Every 8x8 block's transform path (shift -> DCT -> quantize -> zigzag)
// executes on the cycle-level fabric pipeline; the entropy stage runs on
// the host (the documented substitution).  The stream is then decoded with
// the bundled decoder to report PSNR.
//
//   ./build/examples/jpeg_encode [width] [height] [quality] [out.jpg]
//                                [--profile] [--trace-json FILE]
//
// The encoded stream is written only when an output path is given; without
// one the example encodes in memory and reports sizes/PSNR.  --profile
// runs one block through the compiled 1x4 schedule and prints the
// per-tile / ICAP / per-process profile; --trace-json writes that run's
// span timeline as Chrome trace-event JSON (open in Perfetto).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cgra/apps.hpp"

int main(int argc, char** argv) {
  using namespace cgra;

  bool profile = false;
  std::string trace_path;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      if (i + 1 >= argc) {
        std::printf("--trace-json needs a file argument\n");
        return 1;
      }
      trace_path = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  const int width = pos.size() > 0 ? std::atoi(pos[0]) : 64;
  const int height = pos.size() > 1 ? std::atoi(pos[1]) : 48;
  const int quality = pos.size() > 2 ? std::atoi(pos[2]) : 75;
  const char* path = pos.size() > 3 ? pos[3] : nullptr;
  if (width <= 0 || height <= 0 || quality < 1 || quality > 100) {
    std::printf("usage: %s [width] [height] [quality] [out.jpg] "
                "[--profile] [--trace-json FILE]\n",
                argv[0]);
    return 1;
  }

  const auto img = jpeg::synthetic_image(width, height, 2026);
  const auto quant = jpeg::scaled_quant(quality);

  // Sanity-check a few blocks on the fabric pipeline: the tile kernels
  // must agree with the host stages bit for bit.
  std::int64_t fabric_cycles = 0;
  int checked = 0;
  for (int by = 0; by < (height + 7) / 8 && checked < 4; ++by) {
    for (int bx = 0; bx < (width + 7) / 8 && checked < 4; ++bx, ++checked) {
      const auto raw = jpeg::extract_block(img, bx, by);
      const auto fab = jpeg::encode_block_on_fabric(raw, quant);
      if (!fab.ok() || fab.zigzagged != jpeg::encode_block_stages(raw, quant)) {
        std::printf("fabric/host mismatch at block (%d,%d)!\n", bx, by);
        return 1;
      }
      fabric_cycles += fab.total_cycles;
    }
  }
  std::printf("Verified %d blocks on the 1x4 fabric pipeline "
              "(%lld cycles, %.1f us at 400 MHz)\n",
              checked, static_cast<long long>(fabric_cycles),
              cycles_to_ns(fabric_cycles) / 1000.0);

  const auto bytes = jpeg::encode_image(img, quality);
  if (path != nullptr) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::printf("cannot write %s\n", path);
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    std::printf("Wrote %zu bytes to %s (%dx%d, quality %d)\n", bytes.size(),
                path, width, height, quality);
  } else {
    std::printf("Encoded %zu bytes (%dx%d, quality %d); pass an output path "
                "to save the stream\n",
                bytes.size(), width, height, quality);
  }

  const auto decoded = jpeg::decode_image(bytes);
  if (!decoded.ok()) {
    std::printf("decode failed: %s\n", decoded.error().c_str());
    return 1;
  }
  std::printf("Round-trip PSNR: %.1f dB\n", jpeg::psnr(img, decoded.image));

  // Color variant (4:4:4 YCbCr) alongside the grayscale stream.
  {
    const auto rgb = jpeg::synthetic_rgb_image(width, height, 2027);
    const auto color_bytes = jpeg::encode_color_image(rgb, quality);
    const auto color_decoded = jpeg::decode_image(color_bytes);
    if (color_decoded.ok() && color_decoded.is_color) {
      if (path != nullptr) {
        const std::string color_path = std::string(path) + ".color.jpg";
        std::ofstream cout_file(color_path, std::ios::binary);
        cout_file.write(reinterpret_cast<const char*>(color_bytes.data()),
                        static_cast<std::streamsize>(color_bytes.size()));
        std::printf("Wrote %zu bytes to %s (color PSNR %.1f dB)\n",
                    color_bytes.size(), color_path.c_str(),
                    jpeg::psnr_rgb(rgb, color_decoded.rgb));
      } else {
        std::printf("Color variant: %zu bytes (PSNR %.1f dB, not written)\n",
                    color_bytes.size(),
                    jpeg::psnr_rgb(rgb, color_decoded.rgb));
      }
    }
  }

  // What the mapping machinery says about this workload.
  const auto net = jpeg::jpeg_split_pipeline();
  const auto binding =
      mapping::rebalance(net, 8, mapping::RebalanceAlgorithm::kTwo,
                         mapping::CostParams{});
  const auto eval = mapping::evaluate(net, binding, mapping::CostParams{});
  const int blocks = jpeg::block_count(width, height);
  std::printf(
      "\nOn an 8-tile fabric (reBalanceTwo): %s\n"
      "II = %.1f us/block -> %.1f ms per %dx%d image, util %.2f\n",
      binding.describe(net).c_str(), eval.ii_ns / 1000.0,
      eval.time_for_items(blocks) / 1e6, width, height,
      eval.avg_utilization);

  // --- observability: run one block through the compiled schedule ---
  if (profile || !trace_path.empty()) {
    const auto tnet = jpeg::jpeg_transform_pipeline();
    const auto lib = jpeg::jpeg_program_library(quant);
    mapping::Binding tbinding;
    tbinding.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}, {{3}, 1}};
    const auto placement = mapping::place(tbinding, 1, 4,
                                          mapping::PlacementStrategy::kSnake);
    const auto sched =
        mapping::compile_item_schedule(tnet, tbinding, placement, lib);
    if (!sched.ok()) {
      std::printf("schedule compilation failed: %s\n",
                  sched.status.message().c_str());
      return 1;
    }

    fabric::Fabric fab(1, 4);
    config::ReconfigController ctrl(IcapModel{},
                                    interconnect::LinkCostModel{50.0});
    obs::SpanTimeline spans;
    obs::MetricsRegistry metrics;
    spans.set_track_name(obs::kTrackEpochs, "epochs");
    spans.set_track_name(obs::kTrackIcap, "icap");
    spans.set_track_name(obs::kTrackLinks, "links");
    for (int t = 0; t < 4; ++t) {
      spans.set_track_name(obs::tile_track(t), "tile " + std::to_string(t));
    }
    ctrl.attach_timeline(&spans);
    fab.attach_metrics(&metrics);

    const auto raw = jpeg::extract_block(img, 0, 0);
    const auto& first_impl = lib.at(0);
    for (std::size_t i = 0; i < raw.size(); ++i) {
      fab.tile(sched.meta.front().tile)
          .set_dmem(first_impl.in_base + static_cast<int>(i),
                    from_signed(raw[i]));
    }
    const auto sres = config::run_schedule(fab, ctrl, sched.epochs, 1'000'000);
    if (!sres.ok) {
      std::printf("profiled schedule run failed\n");
      return 1;
    }

    if (profile) {
      const auto prof = config::build_profile(fab, sres.timeline);
      std::printf("\n--- one block through the compiled schedule ---\n%s",
                  prof.render().c_str());
      const Status rec = prof.reconcile();
      std::printf("reconciliation: %s\n", rec.message().c_str());
      if (!rec.ok()) return 1;

      TextTable table({"process", "epochs", "executed cycles",
                       "predicted cycles"});
      for (const auto& row :
           mapping::attribute_process_cycles(sched, sres.timeline)) {
        table.add_row({row.process < 0
                           ? std::string("(routing)")
                           : tnet.process(row.process).name,
                       TextTable::integer(row.epochs),
                       TextTable::integer(row.cycles),
                       TextTable::integer(row.predicted_cycles)});
      }
      std::printf("\n%s", table.render().c_str());
    }

    if (!trace_path.empty()) {
      const std::string json = spans.to_chrome_json("jpeg_encode");
      const Status valid = obs::validate_chrome_trace(json);
      if (!valid.ok()) {
        std::printf("trace validation failed: %s\n", valid.message().c_str());
        return 1;
      }
      std::ofstream out(trace_path, std::ios::binary);
      if (!out) {
        std::printf("cannot write %s\n", trace_path.c_str());
        return 1;
      }
      out << json;
      std::printf("\nwrote %zu spans to %s\n", spans.spans().size(),
                  trace_path.c_str());
    }
  }
  return 0;
}

// Quickstart for the job-service runtime (cgra/service.hpp).
//
// Submits a mixed workload — JPEG blocks, a whole image, FFTs, a DSE
// sweep — to one cgra::service::Service, demonstrates deadlines, cancel
// and saturation backpressure, and prints the cache/pool counters that
// explain why the warm path is fast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/service_demo
#include <cstdio>
#include <numbers>
#include <vector>

#include "cgra/service.hpp"

int main() {
  using namespace cgra;
  using service::JobRequest;

  service::ServiceOptions opt;
  opt.workers = 2;
  opt.queue_capacity = 32;
  service::Service svc(opt);

  // 1. JPEG blocks: same quant table -> one batch on one warm pipeline.
  const auto quant = jpeg::scaled_quant(75);
  std::vector<service::JobHandle> blocks;
  for (int i = 0; i < 6; ++i) {
    jpeg::IntBlock raw{};
    for (int j = 0; j < 64; ++j) {
      raw[static_cast<std::size_t>(j)] = (i * 37 + j * 11) % 256;
    }
    service::JpegBlockRequest req;
    req.raw = raw;
    req.quant = quant;
    auto sub = svc.submit(JobRequest{req});
    if (!sub.accepted()) {
      std::printf("submit rejected: %s\n", sub.status.message().c_str());
      return 1;
    }
    blocks.push_back(sub.handle);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto res = svc.wait(blocks[i]);
    if (!res.ok()) {
      std::printf("block %zu failed: %s\n", i, res.status.message().c_str());
      return 1;
    }
    const auto& payload = std::get<service::JpegBlockJobResult>(res.payload);
    if (i == 0) {
      std::printf("JPEG block: %lld cycles, DC coeff %d\n",
                  static_cast<long long>(payload.cycles),
                  payload.zigzagged[0]);
    }
  }

  // 2. A whole image, every block transformed on the warm fabric.
  {
    service::JpegImageRequest req;
    req.image = jpeg::synthetic_image(48, 32, 7);
    req.quality = 75;
    auto sub = svc.submit(JobRequest{req});
    const auto res = svc.wait(sub.handle);
    if (!res.ok()) {
      std::printf("image failed: %s\n", res.status.message().c_str());
      return 1;
    }
    const auto& payload = std::get<service::JpegImageJobResult>(res.payload);
    const bool identical =
        payload.jfif == jpeg::encode_image(req.image, req.quality);
    std::printf("JPEG image: %zu bytes, byte-identical to encode_image: %s\n",
                payload.jfif.size(), identical ? "yes" : "no");
    if (!identical) return 1;
  }

  // 3. FFTs: same geometry -> batched on one pooled fabric; the twiddle
  //    table and every kernel assembly come from the artifact cache.
  {
    std::vector<fft::Cplx> input(64);
    for (int i = 0; i < 64; ++i) {
      const double t = 2.0 * std::numbers::pi * i / 64.0;
      input[static_cast<std::size_t>(i)] = {std::cos(3 * t) / 64.0, 0.0};
    }
    service::FftRequest req;
    req.n = 64;
    req.m = 8;
    req.input = input;
    auto a = svc.submit(JobRequest{req});
    auto b = svc.submit(JobRequest{req});
    const auto ra = svc.wait(a.handle);
    const auto rb = svc.wait(b.handle);
    if (!ra.ok() || !rb.ok()) {
      std::printf("FFT failed: %s\n", ra.status.message().c_str());
      return 1;
    }
    const auto& pa = std::get<service::FftJobResult>(ra.payload);
    std::printf("FFT: %d epochs, %.1f us reconfig, bin 3 magnitude %.3f\n",
                pa.epochs, pa.timeline.reconfig_ns / 1000.0,
                std::abs(pa.output[3]) * 64.0);
  }

  // 4. A DSE sweep (fabric-free; runs beside the fabric jobs).
  {
    service::DseSweepRequest req;
    req.net = jpeg::jpeg_split_pipeline();
    req.max_tiles = 12;
    auto sub = svc.submit(JobRequest{req});
    const auto res = svc.wait(sub.handle);
    const auto& payload = std::get<service::DseSweepJobResult>(res.payload);
    std::printf("DSE sweep: %zu budget points, best II %.1f ns\n",
                payload.points.size(), payload.points.back().eval.ii_ns);
  }

  // 5. Deadlines and cancellation.
  {
    service::JpegBlockRequest req;
    req.quant = quant;
    service::SubmitOptions already_late;
    already_late.deadline = std::chrono::steady_clock::now();
    auto sub = svc.submit(JobRequest{req}, already_late);
    const auto res = svc.wait(sub.handle);
    std::printf("expired-deadline job reports: %s\n",
                res.status.message().c_str());
  }

  // Only scheduling-invariant counters are printed: cache hit/miss and
  // pool reuse depend on how jobs happened to fuse into batches across
  // worker threads, so exact values vary run to run (see the metrics
  // registry, or bench_service_throughput, for the full set).
  std::printf(
      "counters: submitted=%lld completed=%lld "
      "(cache/pool counts vary with batch fusion)\n",
      static_cast<long long>(svc.counter("service.jobs.submitted")),
      static_cast<long long>(svc.counter("service.jobs.completed")));
  return 0;
}

// Quickstart: assemble a tiny program, run it on a 2x2 fabric, send a value
// over a reconfigurable link, and switch epochs through the controller.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cgra/fabric.hpp"

int main() {
  using namespace cgra;
  using interconnect::Direction;

  // 1. Write a tile program in the assembly dialect (see src/isa).
  const std::string source = R"(
    .equ acc, 0
    .equ cnt, 1
      movi acc, #0
      movi cnt, #10
    loop:
      add acc, acc, cnt    ; acc += cnt
      sub cnt, cnt, #1
      bnez cnt, loop
      mov !0, acc          ; ship the result to the linked neighbour
      halt
  )";
  const auto assembled = isa::assemble(source);
  if (!assembled.ok()) {
    std::printf("assembly failed: %s\n", assembled.status.message().c_str());
    return 1;
  }
  std::printf("Assembled %d instructions:\n%s\n",
              assembled.program.inst_words(),
              isa::disassemble(assembled.program).c_str());

  // 2. Build a 2x2 fabric and configure an epoch: the program on tile 0,
  //    its output link pointing east — all streamed through the modelled
  //    ICAP by the reconfiguration controller.
  fabric::Fabric fab(2, 2);
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{100.0});
  config::EpochConfig epoch;
  epoch.name = "sum-1-to-10";
  epoch.links = interconnect::LinkConfig(2, 2);
  epoch.links.set_output(0, Direction::kEast);
  config::TileUpdate update;
  update.program = assembled.program;
  update.reload_program = true;
  epoch.tiles[0] = std::move(update);

  const auto report = ctrl.apply(fab, epoch);
  std::printf("Epoch transition: %d link(s) changed, %.1f ns of ICAP "
              "traffic\n",
              report.links_changed, report.total_ns());

  // 3. Run to completion and read the neighbour's memory.
  const auto run = fab.run(100000);
  std::printf("Ran %lld cycles (%.1f ns at 400 MHz), all halted: %s\n",
              static_cast<long long>(run.cycles), run.elapsed_ns(),
              run.ok() ? "yes" : "no");
  std::printf("Tile 1 received: %lld (expected 55)\n",
              static_cast<long long>(to_signed(fab.tile(1).dmem(0))));
  return run.ok() && to_signed(fab.tile(1).dmem(0)) == 55 ? 0 : 1;
}

// Map-then-run with no hand placement anywhere (cgra/mapper.hpp).
//
// The paper's flow needs a human to choose which processes share a tile and
// where the tiles sit (the Table-4 manual mappings).  This example closes
// that loop end to end with the automatic mapper:
//
//   1. submit the measured JPEG transform pipeline to the job service as a
//      MapJobRequest — the mapper picks binding, placement and links,
//   2. compile the mapped network into an executable epoch schedule,
//   3. run the schedule on a fabric and check the block against the host
//      reference encoder.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/map_and_run
#include <cstdio>
#include <string>

#include "cgra/mapper.hpp"
#include "cgra/service.hpp"

int main() {
  using namespace cgra;

  // 1. Ask the service to map the pipeline onto a 2x2 mesh, 3 tiles.
  const auto net = jpeg::jpeg_transform_pipeline();
  service::MapJobRequest req;
  req.net = net;
  req.mesh_rows = 2;
  req.mesh_cols = 2;
  req.options.max_tiles = 3;

  service::Service svc(service::ServiceOptions{});
  auto sub = svc.submit(service::JobRequest{req});
  if (!sub.accepted()) {
    std::printf("submit rejected: %s\n", sub.status.message().c_str());
    return 1;
  }
  const auto res = svc.wait(sub.handle);
  if (!res.ok()) {
    std::printf("mapping failed: %s\n", res.status.message().c_str());
    return 1;
  }
  const auto& mapped = std::get<service::MapJobResult>(res.payload).mapped;
  std::printf("solver %s (%s proof), %d tiles: %s\n", mapped.solver.c_str(),
              mapped.optimal ? "complete" : "budget-bounded",
              mapped.binding.tile_count(),
              mapped.binding.describe(net).c_str());
  std::printf("per item: II %.0f ns + copies %.0f ns + link flips %.0f ns "
              "= %.0f ns\n",
              mapped.cost.ii_ns, mapped.cost.copy_ns, mapped.cost.link_ns,
              mapped.cost.total_ns());

  // 2. Lower the mapped network to an executable epoch schedule.
  const auto quant = jpeg::scaled_quant(50);
  const auto compiled = mapper::compile_mapped_schedule(
      net, mapped, jpeg::jpeg_program_library(quant));
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.status.message().c_str());
    return 1;
  }
  std::printf("compiled %zu epochs\n", compiled.epochs.size());

  // 3. Push one block through the fabric and check it against the host.
  jpeg::IntBlock raw{};
  for (int i = 0; i < 64; ++i) {
    raw[static_cast<std::size_t>(i)] = (i * 29 + 7) % 256;
  }
  fabric::Fabric fab(req.mesh_rows, req.mesh_cols);
  const jpeg::JpegLayout lay;
  const auto owner = mapping::owner_of_processes(net, mapped.binding);
  const int in_tile =
      mapped.placement.tile_of[static_cast<std::size_t>(owner[0])][0];
  for (int i = 0; i < 64; ++i) {
    fab.tile(in_tile).set_dmem(lay.x + i,
                               from_signed(raw[static_cast<std::size_t>(i)]));
  }
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  const auto run = config::run_schedule(fab, ctrl, compiled.epochs,
                                        10'000'000);
  if (!run.ok) {
    std::printf("schedule run failed\n");
    return 1;
  }
  const int last = net.size() - 1;
  const int out_tile =
      mapped.placement.tile_of[static_cast<std::size_t>(owner[
          static_cast<std::size_t>(last)])][0];
  const auto expect = jpeg::encode_block_stages(raw, quant);
  for (int i = 0; i < 64; ++i) {
    const int got =
        static_cast<int>(to_signed(fab.tile(out_tile).dmem(lay.t + i)));
    if (got != expect[static_cast<std::size_t>(i)]) {
      std::printf("mismatch at %d: fabric %d, host %d\n", i, got,
                  expect[static_cast<std::size_t>(i)]);
      return 1;
    }
  }
  std::printf("fabric block matches the host reference (64/64 coeffs)\n");
  return 0;
}

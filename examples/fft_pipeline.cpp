// FFT pipeline example: runs a 64-point FFT end to end on the cycle-level
// fabric (8 tiles of M=8), validates against the double-precision
// reference, and prints the Equation-1 cost breakdown of the run.
//
//   ./build/examples/fft_pipeline [N] [M] [cols] [--profile]
//                                 [--trace-json FILE]
//
// --profile prints the per-tile utilization / link / ICAP report plus the
// model-vs-executed drift of the Sec. 3.2 tau equations; --trace-json
// writes the span timeline as Chrome trace-event JSON (open in Perfetto).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "cgra/apps.hpp"

int main(int argc, char** argv) {
  using namespace cgra;

  bool profile = false;
  std::string trace_path;
  std::vector<int> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      if (i + 1 >= argc) {
        std::printf("--trace-json needs a file argument\n");
        return 1;
      }
      trace_path = argv[++i];
    } else {
      pos.push_back(std::atoi(argv[i]));
    }
  }
  const int n = pos.size() > 0 ? pos[0] : 64;
  const int m = pos.size() > 1 ? pos[1] : 8;
  const int cols = pos.size() > 2 ? pos[2] : 1;

  fft::FftGeometry g;
  try {
    g = fft::make_geometry(n, m);
  } catch (const std::exception& e) {
    std::printf("bad geometry: %s\n", e.what());
    return 1;
  }
  std::printf(
      "N=%d-point FFT on %d tiles of M=%d (%d column(s), stages=%d, "
      "cross=%d)\n",
      g.n, g.rows * cols, g.m, cols, g.stages, g.cross_stages());

  // A two-tone test signal.
  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double t = 2.0 * std::numbers::pi * j / n;
    x[static_cast<std::size_t>(j)] = {0.6 * std::cos(3 * t) +
                                          0.3 * std::cos(9 * t),
                                      0.0};
  }

  if (cols < 1 || g.stages % cols != 0) {
    std::printf("cols must divide log2(N) = %d (got %d)\n", g.stages, cols);
    return 1;
  }
  fft::FabricFftOptions opt;
  opt.link_cost_ns = 100.0;
  opt.cols = cols;

  obs::SpanTimeline spans;
  obs::MetricsRegistry metrics;
  if (!trace_path.empty()) {
    spans.set_track_name(obs::kTrackEpochs, "epochs");
    spans.set_track_name(obs::kTrackIcap, "icap");
    spans.set_track_name(obs::kTrackLinks, "links");
    for (int t = 0; t < g.rows * cols; ++t) {
      spans.set_track_name(obs::tile_track(t), "tile " + std::to_string(t));
    }
    opt.spans = &spans;
  }
  if (profile) {
    opt.metrics = &metrics;
    opt.collect_profile = true;
  }

  const auto result = fft::run_fabric_fft(g, x, opt);
  if (!result.ok()) {
    std::printf("fabric FFT failed (%zu faults)\n", result.faults.size());
    for (const auto& f : result.faults) {
      std::printf("  %s\n", f.describe().c_str());
    }
    return 1;
  }

  auto ref = fft::fft(x);
  for (auto& v : ref) v /= static_cast<double>(n);
  std::printf("RMS error vs double-precision reference: %.2e\n",
              fft::rms_error(result.output, ref));

  std::printf("\nSpectral peaks (|X_k| > 0.05):\n");
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(result.output[static_cast<std::size_t>(k)]);
    if (mag > 0.05) std::printf("  bin %3d: %.3f\n", k, mag);
  }

  std::printf("\nEquation-1 accounting:\n");
  std::printf("  epochs applied:            %d\n", result.epochs);
  std::printf("  redistribution sub-epochs: %lld\n",
              static_cast<long long>(result.redistribution_subepochs));
  std::printf("  executed compute time (A): %.1f ns\n",
              result.timeline.epoch_compute_ns);
  std::printf("  reconfiguration cost (B):  %.1f ns\n",
              result.timeline.reconfig_ns);

  const auto twiddles = fft::analyze_twiddles(g, 1);
  std::printf(
      "\nTwiddle scheme: %lld of %lld words reloaded per transform "
      "(%lld generated in place by the green rule).\n",
      twiddles.reload_words, twiddles.naive_words, twiddles.generated_words);

  if (profile) {
    std::printf("\n%s", result.profile.render().c_str());
    const Status rec = result.profile.reconcile();
    if (rec.ok()) {
      std::printf("reconciliation: OK (every tile sums to %lld cycles "
                  "== %.1f ns)\n",
                  static_cast<long long>(result.profile.total_cycles),
                  result.profile.total_ns);
    } else {
      std::printf("reconciliation FAILED: %s\n", rec.message().c_str());
      return 1;
    }

    const auto times = dse::measure_process_times(g);
    const auto model =
        dse::evaluate_fft_design(g, times, cols, opt.link_cost_ns);
    const auto drift = dse::build_fft_drift(model, result.timeline);
    std::printf("\n%s", drift.render().c_str());
    std::printf("\nfabric counters: cycles=%lld retired=%lld "
                "remote_writes=%lld faults=%lld\n",
                static_cast<long long>(metrics.counter_value("fabric.cycles")),
                static_cast<long long>(metrics.counter_value("fabric.retired")),
                static_cast<long long>(
                    metrics.counter_value("fabric.remote_writes")),
                static_cast<long long>(metrics.counter_value("fabric.faults")));
  }

  if (!trace_path.empty()) {
    const std::string json = spans.to_chrome_json("fft_pipeline");
    const Status valid = obs::validate_chrome_trace(json);
    if (!valid.ok()) {
      std::printf("trace validation failed: %s\n", valid.message().c_str());
      return 1;
    }
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::printf("cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << json;
    std::printf("\nwrote %zu spans (%zu unclosed) to %s — open in Perfetto "
                "or chrome://tracing\n",
                spans.spans().size(), spans.open_spans(), trace_path.c_str());
  }
  return 0;
}

// FFT pipeline example: runs a 64-point FFT end to end on the cycle-level
// fabric (8 tiles of M=8), validates against the double-precision
// reference, and prints the Equation-1 cost breakdown of the run.
//
//   ./build/examples/fft_pipeline [N] [M] [cols]   (defaults: 64 8 1)
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "apps/fft/fabric_fft.hpp"
#include "apps/fft/twiddle.hpp"

int main(int argc, char** argv) {
  using namespace cgra;
  const int n = argc > 1 ? std::atoi(argv[1]) : 64;
  const int m = argc > 2 ? std::atoi(argv[2]) : 8;
  const int cols = argc > 3 ? std::atoi(argv[3]) : 1;

  fft::FftGeometry g;
  try {
    g = fft::make_geometry(n, m);
  } catch (const std::exception& e) {
    std::printf("bad geometry: %s\n", e.what());
    return 1;
  }
  std::printf(
      "N=%d-point FFT on %d tiles of M=%d (%d column(s), stages=%d, "
      "cross=%d)\n",
      g.n, g.rows * cols, g.m, cols, g.stages, g.cross_stages());

  // A two-tone test signal.
  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double t = 2.0 * std::numbers::pi * j / n;
    x[static_cast<std::size_t>(j)] = {0.6 * std::cos(3 * t) +
                                          0.3 * std::cos(9 * t),
                                      0.0};
  }

  if (cols < 1 || g.stages % cols != 0) {
    std::printf("cols must divide log2(N) = %d (got %d)\n", g.stages, cols);
    return 1;
  }
  fft::FabricFftOptions opt;
  opt.link_cost_ns = 100.0;
  opt.cols = cols;
  const auto result = fft::run_fabric_fft(g, x, opt);
  if (!result.ok) {
    std::printf("fabric FFT failed (%zu faults)\n", result.faults.size());
    for (const auto& f : result.faults) {
      std::printf("  %s\n", f.describe().c_str());
    }
    return 1;
  }

  auto ref = fft::fft(x);
  for (auto& v : ref) v /= static_cast<double>(n);
  std::printf("RMS error vs double-precision reference: %.2e\n",
              fft::rms_error(result.output, ref));

  std::printf("\nSpectral peaks (|X_k| > 0.05):\n");
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(result.output[static_cast<std::size_t>(k)]);
    if (mag > 0.05) std::printf("  bin %3d: %.3f\n", k, mag);
  }

  std::printf("\nEquation-1 accounting:\n");
  std::printf("  epochs applied:            %d\n", result.epochs);
  std::printf("  redistribution sub-epochs: %lld\n",
              static_cast<long long>(result.redistribution_subepochs));
  std::printf("  executed compute time (A): %.1f ns\n",
              result.timeline.epoch_compute_ns);
  std::printf("  reconfiguration cost (B):  %.1f ns\n",
              result.timeline.reconfig_ns);

  const auto twiddles = fft::analyze_twiddles(g, 1);
  std::printf(
      "\nTwiddle scheme: %lld of %lld words reloaded per transform "
      "(%lld generated in place by the green rule).\n",
      twiddles.reload_words, twiddles.naive_words, twiddles.generated_words);
  return 0;
}

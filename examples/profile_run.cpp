// profile_run — the observability driver (docs/OBSERVABILITY.md).
//
// Runs a workload with the full instrumentation stack attached — metrics
// registry on the fabric hot loop, span timeline on the reconfiguration
// controller, profile built from the executed run — and emits the reports
// in any of the supported formats.
//
//   ./build/examples/profile_run fft  [N] [M] [cols]   (defaults: 64 8 2)
//   ./build/examples/profile_run jpeg [quality]        (default: 75)
//
// options:
//   --json             dump the profile and metrics as JSON
//   --csv              dump the profile as CSV rows
//   --trace-json FILE  write the span timeline as Chrome trace-event JSON
//   --engine=SPEC      execution engine: interp | threaded | batch[:width]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "cgra/apps.hpp"
#include "cgra/engine.hpp"

namespace {

using namespace cgra;

void name_tracks(obs::SpanTimeline& spans, int tiles) {
  spans.set_track_name(obs::kTrackEpochs, "epochs");
  spans.set_track_name(obs::kTrackIcap, "icap");
  spans.set_track_name(obs::kTrackLinks, "links");
  for (int t = 0; t < tiles; ++t) {
    spans.set_track_name(obs::tile_track(t), "tile " + std::to_string(t));
  }
}

int emit(const obs::ProfileReport& prof, const obs::MetricsRegistry& metrics,
         const obs::SpanTimeline& spans, bool json, bool csv,
         const std::string& trace_path, const char* process_name) {
  std::printf("%s", prof.render().c_str());
  const Status rec = prof.reconcile();
  std::printf("reconciliation: %s\n", rec.message().c_str());
  std::printf("\n%s", metrics.to_table().c_str());

  if (json) {
    std::printf("\n--- profile JSON ---\n%s\n", prof.to_json().c_str());
    std::printf("--- metrics JSON ---\n%s\n", metrics.to_json().c_str());
  }
  if (csv) {
    std::printf("\n--- profile CSV ---\n%s", prof.to_csv().c_str());
  }
  if (!trace_path.empty()) {
    const std::string trace = spans.to_chrome_json(process_name);
    const Status valid = obs::validate_chrome_trace(trace);
    if (!valid.ok()) {
      std::printf("trace validation failed: %s\n", valid.message().c_str());
      return 1;
    }
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::printf("cannot write %s\n", trace_path.c_str());
      return 1;
    }
    out << trace;
    std::printf("\nwrote %zu spans to %s — open in Perfetto\n",
                spans.spans().size(), trace_path.c_str());
  }
  return rec.ok() ? 0 : 1;
}

int run_fft(const std::vector<int>& pos, bool json, bool csv,
            const std::string& trace_path) {
  const int n = pos.size() > 0 ? pos[0] : 64;
  const int m = pos.size() > 1 ? pos[1] : 8;
  const int cols = pos.size() > 2 ? pos[2] : 2;

  fft::FftGeometry g;
  try {
    g = fft::make_geometry(n, m);
  } catch (const std::exception& e) {
    std::printf("bad geometry: %s\n", e.what());
    return 1;
  }
  if (cols < 1 || g.stages % cols != 0) {
    std::printf("cols must divide log2(N) = %d (got %d)\n", g.stages, cols);
    return 1;
  }

  std::vector<fft::Cplx> x(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double t = 2.0 * std::numbers::pi * j / n;
    x[static_cast<std::size_t>(j)] = {std::cos(5 * t), 0.0};
  }

  obs::SpanTimeline spans;
  obs::MetricsRegistry metrics;
  name_tracks(spans, g.rows * cols);

  fft::FabricFftOptions opt;
  opt.cols = cols;
  opt.spans = &spans;
  opt.metrics = &metrics;
  opt.collect_profile = true;
  const auto result = fft::run_fabric_fft(g, x, opt);
  if (!result.ok()) {
    std::printf("fabric FFT failed (%zu faults)\n", result.faults.size());
    return 1;
  }
  std::printf("profiled %d-point FFT on %d tiles (%d epochs)\n\n", g.n,
              g.rows * cols, result.epochs);

  const int rc = emit(result.profile, metrics, spans, json, csv, trace_path,
                      "profile_run:fft");
  if (rc != 0) return rc;

  dse::Sweep sweep(engine::process_engine());
  const auto times = sweep.measure_process_times(g);
  const auto model =
      dse::evaluate_fft_design(g, times, cols, opt.link_cost_ns);
  std::printf("\n%s",
              dse::build_fft_drift(model, result.timeline).render().c_str());
  return 0;
}

int run_jpeg(const std::vector<int>& pos, bool json, bool csv,
             const std::string& trace_path) {
  const int quality = pos.size() > 0 ? pos[0] : 75;
  const auto quant = jpeg::scaled_quant(quality);
  const auto net = jpeg::jpeg_transform_pipeline();
  const auto lib = jpeg::jpeg_program_library(quant);
  mapping::Binding binding;
  binding.groups = {{{0}, 1}, {{1}, 1}, {{2}, 1}, {{3}, 1}};
  const auto placement =
      mapping::place(binding, 1, 4, mapping::PlacementStrategy::kSnake);
  const auto sched =
      mapping::compile_item_schedule(net, binding, placement, lib);
  if (!sched.ok()) {
    std::printf("schedule compilation failed: %s\n",
                sched.status.message().c_str());
    return 1;
  }

  obs::SpanTimeline spans;
  obs::MetricsRegistry metrics;
  name_tracks(spans, 4);

  fabric::Fabric fab(1, 4);
  config::ReconfigController ctrl(IcapModel{},
                                  interconnect::LinkCostModel{50.0});
  ctrl.attach_timeline(&spans);
  fab.attach_metrics(&metrics);

  const auto img = jpeg::synthetic_image(32, 24, 2026);
  const auto raw = jpeg::extract_block(img, 0, 0);
  const auto& first_impl = lib.at(0);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    fab.tile(sched.meta.front().tile)
        .set_dmem(first_impl.in_base + static_cast<int>(i),
                  from_signed(raw[i]));
  }
  const auto sres = config::run_schedule(fab, ctrl, sched.epochs, 1'000'000);
  if (!sres.ok) {
    std::printf("schedule run failed\n");
    return 1;
  }
  std::printf("profiled one JPEG block through the 1x4 compiled schedule "
              "(%zu epochs)\n\n",
              sched.epochs.size());

  const auto prof = config::build_profile(fab, sres.timeline);
  const int rc =
      emit(prof, metrics, spans, json, csv, trace_path, "profile_run:jpeg");
  if (rc != 0) return rc;

  TextTable table(
      {"process", "epochs", "executed cycles", "predicted cycles"});
  for (const auto& row :
       mapping::attribute_process_cycles(sched, sres.timeline)) {
    table.add_row({row.process < 0 ? std::string("(routing)")
                                   : net.process(row.process).name,
                   TextTable::integer(row.epochs),
                   TextTable::integer(row.cycles),
                   TextTable::integer(row.predicted_cycles)});
  }
  std::printf("\n%s", table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cgra::engine::apply_engine_flag(&argc, argv);
  bool json = false;
  bool csv = false;
  std::string trace_path;
  std::string mode = "fft";
  std::vector<int> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0) {
      if (i + 1 >= argc) {
        std::printf("--trace-json needs a file argument\n");
        return 1;
      }
      trace_path = argv[++i];
    } else if (i == 1 && std::isalpha(static_cast<unsigned char>(*argv[i]))) {
      mode = argv[i];
    } else {
      pos.push_back(std::atoi(argv[i]));
    }
  }
  if (mode == "fft") return run_fft(pos, json, csv, trace_path);
  if (mode == "jpeg") return run_jpeg(pos, json, csv, trace_path);
  std::printf("unknown mode '%s' (expected fft or jpeg)\n", mode.c_str());
  return 1;
}

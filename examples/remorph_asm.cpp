// remorph_asm — assembler / disassembler / single-tile runner CLI.
//
// The developer tool for writing tile programs by hand:
//
//   remorph_asm check  prog.s              assemble, report diagnostics
//   remorph_asm dis    prog.s              assemble then disassemble
//   remorph_asm run    prog.s [options]    execute on one tile
//
// run options:
//   --trace              print the execution trace (last 64 events)
//   --cycles N           cycle budget (default 1e6)
//   --dump LO HI         print dmem[LO..HI) after the run
//   --profile            print the tile's cycle-accounting profile
//   --trace-json FILE    write the run as Chrome trace-event JSON
//
// Exit status: 0 on success, 1 on assembly errors or runtime faults.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cgra/fabric.hpp"

namespace {

std::string read_file(const char* path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  *ok = true;
  return os.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: remorph_asm (check|dis|run) prog.s "
               "[--trace] [--cycles N] [--dump LO HI] [--profile] "
               "[--trace-json FILE]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cgra;
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  bool ok = false;
  const std::string source = read_file(argv[2], &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }

  const auto assembled = isa::assemble(source);
  if (!assembled.ok()) {
    for (const auto& err : assembled.errors) {
      std::fprintf(stderr, "%s: %s\n", argv[2], err.c_str());
    }
    return 1;
  }
  std::printf("assembled %d instruction word(s), %d data word(s)\n",
              assembled.program.inst_words(), assembled.program.data_words());
  if (mode == "check") return 0;

  if (mode == "dis") {
    std::printf("%s", isa::disassemble(assembled.program).c_str());
    return 0;
  }
  if (mode != "run") return usage();

  bool trace = false;
  bool profile = false;
  std::string trace_json;
  long long cycles = 1'000'000;
  int dump_lo = -1;
  int dump_hi = -1;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      trace_json = argv[++i];
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--dump") == 0 && i + 2 < argc) {
      dump_lo = std::atoi(argv[++i]);
      dump_hi = std::atoi(argv[++i]);
    } else {
      return usage();
    }
  }

  fabric::Fabric fab(1, 1);
  fabric::Tracer tracer;
  if (trace) fab.attach_tracer(&tracer);
  obs::MetricsRegistry metrics;
  if (profile) fab.attach_metrics(&metrics);
  if (!fab.tile(0).load_program(assembled.program)) {
    std::fprintf(stderr, "program does not fit the tile\n");
    return 1;
  }
  fab.tile(0).restart();
  const auto run = fab.run(cycles);
  std::printf("ran %lld cycle(s) = %.1f ns, %s\n",
              static_cast<long long>(run.cycles), run.elapsed_ns(),
              run.all_halted ? "halted" : "cycle budget exhausted");
  for (const auto& fault : run.faults) {
    std::printf("FAULT: %s\n", fault.describe().c_str());
  }
  if (trace) {
    std::printf("--- trace ---\n%s", tracer.dump().c_str());
  }
  if (profile) {
    config::Timeline timeline;
    timeline.epoch_compute_ns = run.elapsed_ns();
    timeline.epoch_cycles.push_back(run.cycles);
    const auto prof = config::build_profile(fab, timeline);
    std::printf("--- profile ---\n%s", prof.render().c_str());
    std::printf("reconciliation: %s\n", prof.reconcile().message().c_str());
    std::printf("%s", metrics.to_table().c_str());
  }
  if (!trace_json.empty()) {
    obs::SpanTimeline spans;
    spans.set_track_name(obs::kTrackEpochs, "run");
    spans.complete("run", "epoch", obs::kTrackEpochs, 0.0, run.elapsed_ns(),
                   {{"cycles", std::to_string(run.cycles), true}});
    std::ofstream out(trace_json, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_json.c_str());
      return 1;
    }
    out << spans.to_chrome_json("remorph_asm");
    std::printf("wrote trace to %s\n", trace_json.c_str());
  }
  if (dump_lo >= 0 && dump_hi > dump_lo && dump_hi <= kDataMemWords) {
    std::printf("--- dmem[%d..%d) ---\n", dump_lo, dump_hi);
    for (int a = dump_lo; a < dump_hi; ++a) {
      const Word w = fab.tile(0).dmem(a);
      std::printf("%4d: %s  (%lld)\n", a, word_to_hex(w).c_str(),
                  static_cast<long long>(to_signed(w)));
    }
  }
  return run.ok() ? 0 : 1;
}

// Quickstart for the TCP serving layer (cgra/net.hpp).
//
// Stands up a cgra::net::Server over a cgra::service::Service on an
// ephemeral loopback port, then talks to it through cgra::net::Client:
// ping, a JPEG block, an FFT, a DSE sweep, pipelined requests, and a
// stats frame — verifying the block reply is bit-identical to calling
// the service directly in-process.
//
// With --trace[=path] every call carries a protocol-v3 trace context:
// the client opens spans around its round-trips, the server/service
// stack records connection, queue-wait, epoch-fusion and fabric spans
// tagged with the same trace id, and at the end the demo pulls the
// server's live dump over the wire (kTraceDump), merges it with the
// client timeline and writes ONE Chrome/Perfetto-loadable JSON (default
// serve_trace.json — open it at https://ui.perfetto.dev).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/serve_demo --trace
//
// --engine=interp|threaded|batch[:W] selects the execution engine the
// service's fabrics run on (replies are bit-identical across engines).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numbers>
#include <string>
#include <vector>

#include "cgra/engine.hpp"
#include "cgra/net.hpp"

int main(int argc, char** argv) {
  using namespace cgra;

  const auto engine_opts = engine::apply_engine_flag(&argc, argv);
  bool trace = false;
  std::string trace_path = "serve_trace.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace = true;
      trace_path = argv[i] + 8;
    } else {
      std::printf("usage: %s [--trace[=path]] [--engine=SPEC]\n", argv[0]);
      return 1;
    }
  }

  // One tracer shared by the server AND its service, so a request's
  // connection/queue/fusion/fabric spans land in one timeline; the
  // client records its own side and merges the server dump at the end.
  obs::Tracer server_tracer;
  obs::Tracer client_tracer;

  // --- server: a 2-worker service behind a loopback TCP front-end ---
  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.queue_capacity = 64;
  sopt.engine = engine_opts;
  if (trace) sopt.tracer = &server_tracer;
  service::Service svc(sopt);
  net::ServerOptions nopt;
  if (trace) nopt.tracer = &server_tracer;
  net::Server server(&svc, nopt);
  if (const auto s = server.start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u%s\n", server.port(),
              trace ? " (tracing)" : "");

  net::ClientOptions copt;
  copt.port = server.port();
  if (trace) copt.tracer = &client_tracer;
  net::Client client(copt);

  if (const auto s = client.ping(); !s.ok()) {
    std::printf("ping failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("ping: ok\n");

  // --- a JPEG block over the wire, checked against in-process ---
  service::JpegBlockRequest block;
  for (int i = 0; i < 64; ++i) {
    block.raw[static_cast<std::size_t>(i)] = (i * 29 + 31) % 256;
  }
  block.quant = jpeg::scaled_quant(75);
  net::Response resp;
  net::CallOptions deadline_call;
  deadline_call.deadline_ms = 5000;  // exercises the deadline-check events
  if (const auto s =
          client.call(service::JobRequest{block}, &resp, deadline_call);
      !s.ok() || !resp.result.ok()) {
    std::printf("block failed: %s / %s\n", s.message().c_str(),
                resp.result.status.message().c_str());
    return 1;
  }
  const auto& remote =
      std::get<service::JpegBlockJobResult>(resp.result.payload);
  const auto local = svc.wait(svc.submit(service::JobRequest{block}).handle);
  const auto& direct =
      std::get<service::JpegBlockJobResult>(local.payload);
  std::printf("JPEG block: %lld cycles, bit-identical to in-process: %s\n",
              static_cast<long long>(remote.cycles),
              remote.zigzagged == direct.zigzagged ? "yes" : "no");
  if (remote.zigzagged != direct.zigzagged) return 1;

  // --- an FFT over the wire ---
  service::FftRequest fft_req;
  fft_req.n = 64;
  fft_req.m = 8;
  fft_req.input.resize(64);
  for (int i = 0; i < 64; ++i) {
    const double t = 2.0 * std::numbers::pi * i / 64.0;
    fft_req.input[static_cast<std::size_t>(i)] = {std::cos(5 * t) / 64.0,
                                                  0.0};
  }
  if (const auto s = client.call(service::JobRequest{fft_req}, &resp);
      !s.ok() || !resp.result.ok()) {
    std::printf("FFT failed\n");
    return 1;
  }
  const auto& fres = std::get<service::FftJobResult>(resp.result.payload);
  std::printf("FFT: %d epochs, bin 5 magnitude %.3f\n", fres.epochs,
              std::abs(fres.output[5]) * 64.0);

  // --- a DSE sweep: the reply is the Fig. 16/17 summary ---
  service::DseSweepRequest dse;
  dse.net = jpeg::jpeg_split_pipeline();
  dse.max_tiles = 8;
  if (const auto s = client.call(service::JobRequest{dse}, &resp); !s.ok()) {
    std::printf("DSE failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("DSE sweep: %zu budget points, best II %.1f ns\n",
              resp.dse_points.size(), resp.dse_points.back().ii_ns);

  // --- pipelining: several blocks in flight on one connection ---
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    service::JpegBlockRequest req = block;
    req.raw[0] = i;
    std::uint64_t id = 0;
    if (const auto s = client.send(service::JobRequest{req}, &id); !s.ok()) {
      std::printf("send failed: %s\n", s.message().c_str());
      return 1;
    }
    ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    if (const auto s = client.receive(&resp);
        !s.ok() || resp.request_id != id || !resp.result.ok()) {
      std::printf("pipelined reply %llu failed\n",
                  static_cast<unsigned long long>(id));
      return 1;
    }
  }
  std::printf("pipelined 4 blocks on one connection\n");

  // --- stats: the service's counters plus the server's net.* set ---
  std::vector<obs::MetricSample> stats;
  if (const auto s = client.stats(&stats); !s.ok()) {
    std::printf("stats failed: %s\n", s.message().c_str());
    return 1;
  }
  for (const auto& sample : stats) {
    if (sample.name == "service.jobs.completed" ||
        sample.name == "net.requests" || sample.name == "net.bytes.out") {
      std::printf("stat %-24s %.0f\n", sample.name.c_str(), sample.value);
    }
  }
  // Per-request-type latency percentiles (from the server's histograms).
  for (const auto& sample : stats) {
    if (sample.name.rfind("net.latency_ms.", 0) == 0 &&
        (sample.name.size() > 4 &&
         (sample.name.compare(sample.name.size() - 4, 4, ".p50") == 0 ||
          sample.name.compare(sample.name.size() - 4, 4, ".p90") == 0 ||
          sample.name.compare(sample.name.size() - 4, 4, ".p99") == 0))) {
      std::printf("stat %-32s %8.3f ms\n", sample.name.c_str(), sample.value);
    }
  }

  // --- trace export: pull the server dump, merge, write one JSON ---
  if (trace) {
    net::TraceDumpInfo dump;
    if (const auto s = client.trace_dump(&dump); !s.ok()) {
      std::printf("trace dump failed: %s\n", s.message().c_str());
      return 1;
    }
    const std::string server_json(dump.trace_json.begin(),
                                  dump.trace_json.end());
    std::vector<obs::Span> server_spans;
    if (const auto s = obs::parse_chrome_trace(server_json, &server_spans);
        !s.ok()) {
      std::printf("server trace did not parse: %s\n", s.message().c_str());
      return 1;
    }
    client_tracer.merge_spans(server_spans);
    const std::string merged = client_tracer.to_chrome_json("serve_demo");
    std::ofstream out(trace_path, std::ios::binary);
    out << merged;
    if (!out.good()) {
      std::printf("cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf(
        "trace: %zu server spans merged (%u anomalies, %llu flight events) "
        "-> %s\n",
        server_spans.size(), dump.anomalies,
        static_cast<unsigned long long>(dump.events_recorded),
        trace_path.c_str());
  }

  server.stop();
  std::printf("drained and stopped\n");
  return 0;
}
